//! NeaTS-L: the lossy compressor with a maximum-error guarantee.
//!
//! Dropping the corrections from the NeaTS representation leaves a piecewise
//! nonlinear ε-approximation: each value is reconstructed as `⌊f(u)⌋`, with
//! `|y − ⌊f(u)⌋| ≤ ε` guaranteed (paper §III-B, "Partitioning for lossy
//! compression"). The partitioner minimises the storage of the function
//! parameters alone, running in O(|F|·n).

use crate::fit::{model_value, Fragment, Kind, Params};
use crate::partition::{partition, positivity_shift, Partition, PartitionConfig};
use succinct::{EliasFano, PackedVec, WaveletMatrix};
use timeseries::TimeSeries;

/// A lossy, randomly-accessible piecewise-nonlinear approximation.
///
/// ```
/// use neats_core::{Kind, NeaTSLossy};
/// use timeseries::TimeSeries;
///
/// let ts = TimeSeries::from_values((0..2000).map(|k| k * k / 50).collect());
/// let lossy = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 10);
/// assert!(lossy.max_error(&ts) <= 11); // the ε guarantee (+1 floor slack)
/// assert!(lossy.size_in_bytes() < ts.uncompressed_bytes() / 20);
/// ```
#[derive(Clone, Debug)]
pub struct NeaTSLossy {
    n: usize,
    shift: i64,
    eps: u64,
    starts: EliasFano,
    kinds: WaveletMatrix,
    kind_table: Vec<Kind>,
    params: Vec<Vec<u64>>,
    origin_deltas: PackedVec,
}

impl NeaTSLossy {
    /// Compresses `ts` under the error bound `eps` using the given function
    /// families.
    pub fn compress(ts: &TimeSeries, kinds: &[Kind], eps: u64) -> Self {
        Self::compress_with_threads(ts, kinds, eps, 0)
    }

    /// [`Self::compress`] with an explicit partitioner thread count
    /// (`0` = automatic; see [`crate::parallel::effective_threads`]). The
    /// output is bit-identical for every thread count.
    pub fn compress_with_threads(
        ts: &TimeSeries,
        kinds: &[Kind],
        eps: u64,
        threads: usize,
    ) -> Self {
        let values = ts.values();
        let shift = positivity_shift(values, eps);
        // The fitter sees `y as f64` and the decoder re-evaluates the model
        // in f64; past 2^53 both sides lose integer precision, so the fit
        // must be tightened or reconstruction can land outside the promised
        // ε + 1 (the lossless path absorbs the same rounding in its
        // corrections; the lossy path has none). `float_eval_slack` is only
        // an estimate — slope error amplified over a long fragment can
        // exceed a fixed ULP multiple — so the bound is enforced by
        // *measuring* the integer-domain error and retightening until the
        // stored contract (≤ ε + 1, the +1 absorbing model-evaluation
        // rounding) actually holds. Values within ±2^53 take the first
        // iteration (slack 0, error within ε + 1 by construction).
        let mut slack = crate::fit::float_eval_slack(values, shift);
        loop {
            let fit_eps = eps.saturating_sub(slack);
            let cfg = PartitionConfig::lossy(kinds, fit_eps, shift).with_threads(threads);
            let part = partition(values, &cfg);
            let out = Self::encode(&part, values.len(), shift, eps);
            let overshoot = out.max_error(ts).saturating_sub(eps.saturating_add(1));
            if overshoot == 0 || fit_eps == 0 {
                // `fit_eps == 0` is the unsatisfiable corner (ε smaller than
                // the f64 conversion error of the magnitudes involved):
                // return the best float-exact fit rather than loop.
                return out;
            }
            slack = slack.saturating_add(overshoot.max(slack).max(1));
        }
    }

    fn encode(part: &Partition, n: usize, shift: i64, eps: u64) -> Self {
        let m = part.fragments.len();
        let mut starts = Vec::with_capacity(m);
        let mut kind_syms = Vec::with_capacity(m);
        let mut origin_deltas = Vec::with_capacity(m);
        let mut kind_table: Vec<Kind> = Vec::new();
        let mut params: Vec<Vec<u64>> = Vec::new();
        for frag in &part.fragments {
            starts.push(frag.start as u64);
            let sym = match kind_table.iter().position(|&k| k == frag.kind) {
                Some(s) => s,
                None => {
                    kind_table.push(frag.kind);
                    params.push(Vec::new());
                    kind_table.len() - 1
                }
            };
            kind_syms.push(sym as u8);
            let p = &mut params[sym];
            p.push(frag.params.m.to_bits());
            p.push(frag.params.b.to_bits());
            if frag.kind.param_count() == 3 {
                p.push(frag.params.extra.to_bits());
            }
            origin_deltas.push((frag.start - frag.origin) as u64);
        }
        Self {
            n,
            shift,
            eps,
            starts: EliasFano::new(&starts),
            kinds: WaveletMatrix::new(&kind_syms),
            kind_table,
            params,
            origin_deltas: PackedVec::new(&origin_deltas),
        }
    }

    /// Number of data points represented.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the approximation covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The error bound the approximation was built under.
    pub fn eps(&self) -> u64 {
        self.eps
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.origin_deltas.len()
    }

    /// Index of the fragment covering position `k`.
    pub fn fragment_index_of(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        self.starts.rank_leq(k as u64) - 1
    }

    /// The global positivity shift stored in the header.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Reconstructs the fragment descriptor for fragment `i`.
    pub fn fragment(&self, i: usize) -> Fragment {
        let start = self.starts.get(i) as usize;
        let end = if i + 1 < self.fragment_count() {
            self.starts.get(i + 1) as usize
        } else {
            self.n
        };
        let sym = self.kinds.access(i);
        let kind = self.kind_table[sym as usize];
        let params = self.params_of(sym, self.kinds.rank(sym, i));
        let origin = start - self.origin_deltas.get(i) as usize;
        Fragment { kind, params, start, end, origin }
    }

    /// Parameters of the `rank`-th fragment of kind symbol `sym`.
    #[inline]
    fn params_of(&self, sym: u8, rank: usize) -> Params {
        let pc = self.kind_table[sym as usize].param_count();
        let base = rank * pc;
        let arr = &self.params[sym as usize];
        Params {
            m: f64::from_bits(arr[base]),
            b: f64::from_bits(arr[base + 1]),
            extra: if pc == 3 { f64::from_bits(arr[base + 2]) } else { 0.0 },
        }
    }

    /// The approximated value at position `k` (random access).
    pub fn approximate(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.rank_leq(k as u64) - 1;
        let frag = self.fragment(i);
        model_value(&frag, k, self.shift)
    }

    /// Materialises the whole approximated series.
    ///
    /// Sequential walk: fragment starts stream out of the Elias-Fano
    /// iterator and per-kind parameter ranks are incremental counters, so no
    /// per-fragment select/rank machinery runs.
    pub fn reconstruct(&self) -> Vec<i64> {
        let m = self.fragment_count();
        let mut out = Vec::with_capacity(self.n);
        let mut ranks = vec![0usize; self.kind_table.len()];
        let mut starts = self.starts.iter();
        let mut start = starts.next().map(|v| v as usize).unwrap_or(0);
        for i in 0..m {
            let end = starts.next().map(|v| v as usize).unwrap_or(self.n);
            let sym = self.kinds.access(i);
            let kind = self.kind_table[sym as usize];
            let params = self.params_of(sym, ranks[sym as usize]);
            ranks[sym as usize] += 1;
            let origin = start - self.origin_deltas.get(i) as usize;
            let frag = Fragment { kind, params, start, end, origin };
            for k in start..end {
                out.push(model_value(&frag, k, self.shift));
            }
            start = end;
        }
        out
    }

    /// Compressed size in bytes (parameters plus access structures).
    pub fn size_in_bytes(&self) -> usize {
        let header = 8 + 8 + 8 + self.kind_table.len() + 8;
        header
            + self.starts.size_in_bytes()
            + self.kinds.size_in_bytes()
            + self.params.iter().map(|p| p.len() * 8).sum::<usize>()
            + self.origin_deltas.size_in_bytes()
    }

    /// Measured maximum absolute error against the original values.
    pub fn max_error(&self, original: &TimeSeries) -> u64 {
        original
            .values()
            .iter()
            .enumerate()
            .map(|(k, &v)| v.abs_diff(self.approximate(k)))
            .max()
            .unwrap_or(0)
    }

    /// Mean Absolute Percentage Error against the original values, in %
    /// (paper §IV-B; see [`timeseries::types::mape_pct`] for the near-zero
    /// handling).
    pub fn mape(&self, original: &TimeSeries) -> f64 {
        timeseries::mape_pct(original, &self.reconstruct())
    }

    /// Writes all components, marking one container section per component
    /// (used by [`crate::serial`]).
    pub(crate) fn write_wire(&self, sw: &mut crate::serial::SectionWriter) {
        use succinct::Wire;
        sw.w.u64(self.n as u64);
        sw.w.i64(self.shift);
        sw.w.u64(self.eps);
        sw.mark(); // header
        self.starts.write(&mut sw.w);
        sw.mark(); // starts
        self.kinds.write(&mut sw.w);
        sw.mark(); // kinds
        crate::serial::write_kind_table(&mut sw.w, &self.kind_table);
        sw.mark(); // kind-table
        crate::serial::write_params(&mut sw.w, &self.params);
        sw.mark(); // params
        self.origin_deltas.write(&mut sw.w);
        sw.mark(); // origin-deltas
    }

    /// Reads and validates all components.
    pub(crate) fn read_wire(
        r: &mut succinct::WireReader<'_>,
    ) -> Result<Self, succinct::WireError> {
        use succinct::{Wire, WireError};
        let n = r.read_len()?;
        let shift = r.i64()?;
        let eps = r.u64()?;
        let starts = EliasFano::read(r)?;
        let kinds = WaveletMatrix::read(r)?;
        let kind_table = crate::serial::read_kind_table(r)?;
        let params = crate::serial::read_params(r, &kind_table)?;
        let origin_deltas = PackedVec::read(r)?;
        let m = starts.len();
        if kinds.len() != m || origin_deltas.len() != m {
            return Err(WireError::Corrupt("fragment count mismatch"));
        }
        // n and m must be zero together, or fragment_of underflows on a
        // crafted archive with points but no fragments.
        if (m == 0) != (n == 0) {
            return Err(WireError::Corrupt("fragment count vs series length"));
        }
        let mut prev = 0usize;
        let mut counts = vec![0usize; kind_table.len()];
        for i in 0..m {
            let s = starts.get(i) as usize;
            if (i == 0 && s != 0) || (i > 0 && s <= prev) || s >= n {
                return Err(WireError::Corrupt("fragment starts"));
            }
            let sym = kinds.access(i) as usize;
            if sym >= kind_table.len() {
                return Err(WireError::Corrupt("kind symbol"));
            }
            counts[sym] += 1;
            if origin_deltas.get(i) as usize > s {
                return Err(WireError::Corrupt("origin delta"));
            }
            prev = s;
        }
        for (sym, &count) in counts.iter().enumerate() {
            if params[sym].len() != count * kind_table[sym].param_count() {
                return Err(WireError::Corrupt("params length"));
            }
        }
        Ok(Self { n, shift, eps, starts, kinds, kind_table, params, origin_deltas })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_sine(n: usize, seed: u64, noise: i64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        TimeSeries::from_values(
            (0..n)
                .map(|k| {
                    (5000.0 * ((k as f64) / 200.0).sin()) as i64 + rng.random_range(-noise..=noise)
                })
                .collect(),
        )
    }

    #[test]
    fn error_bound_holds() {
        let ts = noisy_sine(5000, 1, 10);
        for eps in [16u64, 64, 256] {
            let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, eps);
            // +1 slack for floor/float edge (documented deviation)
            assert!(l.max_error(&ts) <= eps + 1, "eps={eps} err={}", l.max_error(&ts));
        }
    }

    #[test]
    fn error_bound_holds_beyond_f64_exact_integer_range() {
        // Regression: values past 2^53 are not exactly representable in
        // f64, so the fitter's float-space ε-guarantee used to miss the
        // integer-domain bound by a few ULPs (a unit or two at 2^55).
        // The fit is now tightened by the representation slack.
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: i64 = 3 << 53;
        let values: Vec<i64> = (0..4000)
            .map(|_| {
                v += rng.random_range(-(1i64 << 42)..(1i64 << 42));
                v
            })
            .collect();
        let ts = TimeSeries::from_values(values);
        let eps = ts.delta() / 200;
        let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, eps);
        assert_eq!(l.eps(), eps, "stored bound must be the requested one");
        assert!(l.max_error(&ts) <= eps + 1, "err {} > {}", l.max_error(&ts), eps + 1);
    }

    #[test]
    fn random_access_matches_reconstruct() {
        let ts = noisy_sine(3000, 2, 5);
        let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 32);
        let recon = l.reconstruct();
        assert_eq!(recon.len(), ts.len());
        for k in (0..ts.len()).step_by(37) {
            assert_eq!(l.approximate(k), recon[k], "k={k}");
        }
    }

    #[test]
    fn bigger_eps_fewer_fragments() {
        let ts = noisy_sine(5000, 3, 20);
        let small = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 8);
        let large = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 512);
        assert!(
            large.fragment_count() < small.fragment_count(),
            "{} !< {}",
            large.fragment_count(),
            small.fragment_count()
        );
        assert!(large.size_in_bytes() < small.size_in_bytes());
    }

    #[test]
    fn lossy_is_much_smaller_than_raw() {
        let ts = noisy_sine(10_000, 4, 10);
        let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 100);
        let ratio = l.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64;
        assert!(ratio < 0.10, "lossy ratio {ratio}");
    }

    #[test]
    fn mape_is_small_for_generous_eps() {
        let ts = noisy_sine(3000, 5, 5);
        let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 50);
        let mape = l.mape(&ts);
        assert!(mape.is_finite());
        // values are in the thousands, eps 50 → sub-5% error typical
        assert!(mape < 20.0, "mape {mape}");
    }

    #[test]
    fn empty_and_tiny_series() {
        let empty = TimeSeries::from_values(vec![]);
        let l = NeaTSLossy::compress(&empty, &[Kind::Linear], 4);
        assert!(l.is_empty());
        assert_eq!(l.reconstruct(), Vec::<i64>::new());

        let one = TimeSeries::from_values(vec![9]);
        let l = NeaTSLossy::compress(&one, &[Kind::Linear], 0);
        assert_eq!(l.approximate(0), 9);
    }

    #[test]
    fn nonlinear_kinds_reduce_fragments_on_nonlinear_data() {
        // Pure exponential growth: with exp in the pool, far fewer fragments.
        let values: Vec<i64> =
            (1..=4000).map(|u| (100.0 * (0.002 * u as f64).exp()) as i64).collect();
        let ts = TimeSeries::from_values(values);
        let with_exp = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, 4);
        let lin_only = NeaTSLossy::compress(&ts, &[Kind::Linear], 4);
        assert!(
            with_exp.fragment_count() < lin_only.fragment_count(),
            "exp {} !< linear {}",
            with_exp.fragment_count(),
            lin_only.fragment_count()
        );
    }
}
