//! Fragment fitting: the paper's `MakeApproximation` (Theorem 1).
//!
//! [`longest_fragment`] finds, for a given function kind and error bound ε,
//! the longest fragment starting at a given index that admits an
//! ε-approximation — in optimal O(fragment length) time via the
//! [`stab::StabbingLine`] reduction.

pub mod kinds;
pub mod stab;

pub use kinds::{Kind, Params};
pub use stab::{Line, StabbingLine};

/// A fitted fragment: the function of `kind` with `params` ε-approximates
/// `values[start..end]` when evaluated at local coordinates
/// `u = index − origin + 1`.
///
/// `origin == start` for fragments produced directly by the fitter; the
/// partitioner's *suffix edges* (paper §III-B) produce fragments whose
/// function was fitted from an earlier origin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fragment {
    /// The function family.
    pub kind: Kind,
    /// Fitted parameters (transformed space, plus anchor extra).
    pub params: Params,
    /// First covered index (inclusive, 0-based).
    pub start: usize,
    /// One past the last covered index.
    pub end: usize,
    /// Index the local coordinate system is anchored at (`u = 1` there).
    pub origin: usize,
}

impl Fragment {
    /// Number of data points covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the fragment covers no points.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Applies the global positivity shift to a raw value for log-domain kinds.
#[inline]
fn shifted(kind: Kind, y: i64, shift: i64) -> f64 {
    if kind.log_domain() {
        (y + shift) as f64
    } else {
        y as f64
    }
}

/// Precomputed `f64` views of a whole series, shared across every `(f, ε)`
/// pair of one partitioning run.
///
/// [`longest_fragment`] converts each value it touches from `i64` on the
/// fly (`shifted`), which is fine for a single greedy pass but wasteful when
/// Algorithm 1 re-reads every point once per pair: the same `as f64` cast
/// (and `+ shift` for log-domain kinds) is then repeated `|F|·|E|` times.
/// A `FitView` hoists both conversions out of the inner fit loops — `plain`
/// holds `values[k] as f64`, `shifted` holds `(values[k] + shift) as f64` —
/// producing bit-identical inputs to the transforms.
pub struct FitView<'a> {
    values: &'a [i64],
    plain: Vec<f64>,
    /// Log-domain view; empty when no log-domain kind is in play.
    shifted: Vec<f64>,
    shift: i64,
}

impl<'a> FitView<'a> {
    /// Builds the view. `with_log_domain` controls whether the shifted view
    /// is materialised (pass `true` iff some kind in use is log-domain).
    pub fn new(values: &'a [i64], shift: i64, with_log_domain: bool) -> Self {
        let plain = values.iter().map(|&y| y as f64).collect();
        let shifted = if with_log_domain {
            values.iter().map(|&y| (y + shift) as f64).collect()
        } else {
            Vec::new()
        };
        Self { values, plain, shifted, shift }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying raw values.
    pub fn values(&self) -> &'a [i64] {
        self.values
    }

    /// The positivity shift the view was built with.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// The (possibly shifted) value `kind`'s transform reads at index `k`.
    #[inline]
    fn y(&self, kind: Kind, k: usize) -> f64 {
        if kind.log_domain() {
            debug_assert!(!self.shifted.is_empty(), "view built without the log-domain plane");
            self.shifted[k]
        } else {
            self.plain[k]
        }
    }
}

/// The model's integer prediction for index `k` (0-based), i.e.
/// `⌊f(u)⌋ − shift` for log-domain kinds and `⌊f(u)⌋` otherwise.
///
/// This function is shared between compression (residual computation) and
/// decompression (value reconstruction), which is what makes the scheme
/// lossless regardless of floating-point rounding.
#[inline]
pub fn model_value(frag: &Fragment, k: usize, shift: i64) -> i64 {
    let u = (k - frag.origin + 1) as f64;
    let f = frag.kind.eval(frag.params, u);
    let clamped = floor_to_i64(f);
    if frag.kind.log_domain() {
        clamped.wrapping_sub(shift)
    } else {
        clamped
    }
}

/// Floors a model output to i64 — the one canonical float→integer step
/// shared by encoding and every decode path. Rust's saturating `as` cast
/// makes this total (NaN → 0, ±∞ → MIN/MAX) and branchless, which lets the
/// decompression loop vectorise.
#[inline]
pub fn floor_to_i64(f: f64) -> i64 {
    f.floor() as i64
}

/// Estimated integer error of the f64 round trip every lossy fitter in the
/// workspace takes: input conversion (`y as f64`, ≤ ½ ULP) plus model
/// evaluation (a few ULPs of the result's magnitude). Zero whenever every
/// (shifted) value sits within f64's exact integer range `±2^53` — i.e. for
/// every realistic scaled-decimal series. For magnitudes beyond that a
/// lossy compressor must tighten its fitting ε by at least this much, or
/// the float-space guarantee fails to transfer to the integer domain and
/// reconstruction can land just outside the promised ε + 1 (the lossless
/// path absorbs the same rounding in its corrections; lossy paths have
/// none).
///
/// This is a starting *estimate*, not a proven bound: fitted-slope error
/// amplified over a long fragment can exceed any fixed ULP multiple (seen
/// in practice as ~10 ULPs on a 2^55-magnitude walk). Callers therefore
/// measure the integer-domain max error after encoding and retighten until
/// the stored ε actually holds — see `NeaTSLossy::compress_with_threads`.
/// When ε itself is smaller than the conversion error of the magnitudes
/// involved the bound is not representable in f64 arithmetic at all and
/// tightening saturates at a zero-ε fit (best effort).
pub fn float_eval_slack(values: &[i64], shift: i64) -> u64 {
    let max_abs = values
        .iter()
        .map(|&y| y.unsigned_abs().max(y.saturating_add(shift).unsigned_abs()))
        .max()
        .unwrap_or(0);
    if max_abs <= 1u64 << 53 {
        return 0;
    }
    let ulp = 1u64 << (63 - max_abs.leading_zeros() as u64).saturating_sub(52);
    4 * ulp
}

/// Maximum absolute residual of `frag` over `values` (its true L∞ error).
pub fn max_abs_residual(values: &[i64], frag: &Fragment, shift: i64) -> u64 {
    (frag.start..frag.end)
        .map(|k| values[k].abs_diff(model_value(frag, k, shift)))
        .max()
        .unwrap_or(0)
}

/// Finds the longest fragment `values[start..j]` that admits an
/// ε-approximation by a function of `kind`, and returns it with fitted
/// parameters (the paper's `MakeApproximation(T, k, f, ε)`).
///
/// `shift` is the global positivity shift used by log-domain kinds.
/// Returns `None` only if the kind's transform is undefined at the very
/// first point (impossible when `shift` is chosen as in
/// [`crate::positivity_shift`]).
pub fn longest_fragment(
    values: &[i64],
    start: usize,
    kind: Kind,
    eps: u64,
    shift: i64,
) -> Option<Fragment> {
    longest_fragment_impl(values.len(), |k| shifted(kind, values[k], shift), start, kind, eps)
}

/// [`longest_fragment`] reading from a shared [`FitView`] instead of
/// converting values on the fly — the form the two-stage partitioner uses so
/// the `i64 → f64` (and shift) work is done once per series, not once per
/// `(f, ε)` pair. Bit-identical results to [`longest_fragment`].
pub fn longest_fragment_in(
    view: &FitView<'_>,
    start: usize,
    kind: Kind,
    eps: u64,
) -> Option<Fragment> {
    longest_fragment_impl(view.len(), |k| view.y(kind, k), start, kind, eps)
}

/// Shared core of the two entry points above; `y_at(k)` yields the
/// (possibly shifted) f64 value at index `k`.
fn longest_fragment_impl(
    len: usize,
    y_at: impl Fn(usize) -> f64,
    start: usize,
    kind: Kind,
    eps: u64,
) -> Option<Fragment> {
    debug_assert!(start < len);
    let epsf = eps as f64;
    let mut line = StabbingLine::new();
    let mut end = start;

    if kind.anchored() {
        let y0 = y_at(start);
        if kind.log_domain() && y0 <= 0.0 {
            return None;
        }
        end = start + 1; // the anchor itself is always represented exactly
        while end < len {
            let u = (end - start + 1) as f64;
            let y = y_at(end);
            let Some((t, lo, hi)) = kind.transform_anchored(u, y, y0, epsf) else { break };
            if !line.try_add(t, lo, hi) {
                break;
            }
            end += 1;
        }
        let (m, b) = match line.solution() {
            Some(l) => (l.slope, l.intercept),
            None => (0.0, 0.0), // single-point fragment: constant anchor
        };
        let params = kind.finish_params(m, b, y0);
        return Some(Fragment { kind, params, start, end, origin: start });
    }

    while end < len {
        let u = (end - start + 1) as f64;
        let y = y_at(end);
        let Some((t, lo, hi)) = kind.transform(u, y, epsf) else { break };
        if !line.try_add(t, lo, hi) {
            break;
        }
        end += 1;
    }
    if end == start {
        return None; // transform undefined at the first point
    }
    let l = line.solution().expect("at least one segment accepted");
    let params = Params { m: l.slope, b: l.intercept, extra: 0.0 };
    Some(Fragment { kind, params, start, end, origin: start })
}

/// Greedy piecewise approximation (Corollary 1): repeatedly take the longest
/// fragment of a single kind. Returns the minimal-count partition for that
/// kind.
pub fn greedy_partition(values: &[i64], kind: Kind, eps: u64, shift: i64) -> Vec<Fragment> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < values.len() {
        let frag = longest_fragment(values, start, kind, eps, shift)
            .expect("transform undefined: wrong shift for log-domain kind");
        debug_assert!(frag.end > start);
        start = frag.end;
        out.push(frag);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_eps_bound(values: &[i64], frag: &Fragment, eps: u64, shift: i64) {
        // Allow +1 slack for floor-induced rounding at fragment boundaries:
        // the mathematical bound is ε, floor keeps it within ε (see paper
        // §II), but f64 evaluation of transcendental kinds can add one ulp.
        let r = max_abs_residual(values, frag, shift);
        assert!(r <= eps + 1, "residual {r} exceeds eps {eps} for {:?}", frag.kind);
    }

    #[test]
    fn linear_fragment_exact_line() {
        let values: Vec<i64> = (0..100).map(|k| 3 * k + 7).collect();
        let frag = longest_fragment(&values, 0, Kind::Linear, 0, 0).unwrap();
        assert_eq!(frag.end, 100, "an exact line must be covered entirely");
        assert_eq!(max_abs_residual(&values, &frag, 0), 0);
    }

    #[test]
    fn linear_fragment_breaks_at_discontinuity() {
        let mut values: Vec<i64> = (0..50).map(|k| 2 * k).collect();
        values.extend((0..50).map(|k| 1000 - 10 * k));
        let frag = longest_fragment(&values, 0, Kind::Linear, 1, 0).unwrap();
        assert!(frag.end <= 51, "fragment crossed the discontinuity: end={}", frag.end);
        check_eps_bound(&values, &frag, 1, 0);
    }

    #[test]
    fn longest_fragment_is_maximal_vs_bruteforce() {
        // Brute force: a fragment [s, e) is feasible iff some line stabs all
        // transformed segments; compare fragment end against extending by one
        // and checking residual feasibility via dense parameter search.
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<i64> =
            (0..200).map(|k| (10.0 * ((k as f64) / 7.0).sin()) as i64 + rng.random_range(-2..3)).collect();
        for eps in [0u64, 1, 3, 8] {
            let mut start = 0;
            while start < values.len() {
                let frag = longest_fragment(&values, start, Kind::Linear, eps, 0).unwrap();
                check_eps_bound(&values, &frag, eps, 0);
                // Maximality: brute-force check that extending is infeasible.
                if frag.end < values.len() {
                    let ext = &values[start..=frag.end];
                    assert!(
                        !linear_feasible_brute(ext, eps),
                        "fragment [{start}, {}) not maximal for eps={eps}",
                        frag.end
                    );
                }
                start = frag.end;
            }
        }
    }

    /// LP-free brute feasibility for |m·u + b − y| ≤ eps over u = 1..n.
    fn linear_feasible_brute(values: &[i64], eps: u64) -> bool {
        let n = values.len();
        let e = eps as f64;
        // candidate slopes from all endpoint pairs
        let mut slopes = vec![0.0];
        for i in 0..n {
            for j in i + 1..n {
                let dt = (j - i) as f64;
                for (si, sj) in [(e, -e), (-e, e), (e, e), (-e, -e)] {
                    slopes.push(((values[j] as f64 + sj) - (values[i] as f64 + si)) / dt);
                }
            }
        }
        slopes.iter().any(|&m| {
            let mut blo = f64::NEG_INFINITY;
            let mut bhi = f64::INFINITY;
            for (k, &y) in values.iter().enumerate() {
                let u = (k + 1) as f64;
                blo = blo.max(y as f64 - e - m * u);
                bhi = bhi.min(y as f64 + e - m * u);
            }
            blo <= bhi + 1e-9
        })
    }

    #[test]
    fn exponential_fits_exponential_data() {
        // y = 5 e^{0.05 u}
        let values: Vec<i64> = (1..=150).map(|u| (5.0 * (0.05 * u as f64).exp()).round() as i64).collect();
        let frag = longest_fragment(&values, 0, Kind::Exponential, 2, 0).unwrap();
        assert!(frag.len() >= 100, "exponential fit too short: {}", frag.len());
        check_eps_bound(&values, &frag, 2, 0);
        // Linear cannot follow an exponential that long with the same eps.
        let lin = longest_fragment(&values, 0, Kind::Linear, 2, 0).unwrap();
        assert!(lin.len() < frag.len(), "linear {} >= exponential {}", lin.len(), frag.len());
    }

    #[test]
    fn quadratic_fits_parabola_exactly() {
        // y = 2u² − 3u + 11 (anchored family can represent it exactly)
        let values: Vec<i64> = (1..=100).map(|u| 2 * u * u - 3 * u + 11).collect();
        let frag = longest_fragment(&values, 0, Kind::Quadratic, 1, 0).unwrap();
        assert_eq!(frag.end, 100, "parabola should be one fragment");
        check_eps_bound(&values, &frag, 1, 0);
    }

    #[test]
    fn sqrt_fits_radical_data() {
        let values: Vec<i64> = (1..=200).map(|u| (40.0 * (u as f64).sqrt() + 7.0) as i64).collect();
        let frag = longest_fragment(&values, 0, Kind::Sqrt, 1, 0).unwrap();
        assert!(frag.len() >= 150, "sqrt fit too short: {}", frag.len());
        check_eps_bound(&values, &frag, 1, 0);
    }

    #[test]
    fn all_kinds_respect_eps_on_random_data() {
        let mut rng = StdRng::seed_from_u64(77);
        let values: Vec<i64> = {
            let mut v = 500i64;
            (0..300)
                .map(|_| {
                    v += rng.random_range(-5..6);
                    v = v.max(200); // keep positive for log kinds with shift 0
                    v
                })
                .collect()
        };
        for kind in Kind::ALL {
            for eps in [0u64, 2, 10] {
                let mut start = 0;
                while start < values.len() {
                    let frag = longest_fragment(&values, start, kind, eps, 0)
                        .unwrap_or_else(|| panic!("{kind:?} failed at {start}"));
                    assert!(frag.end > start);
                    check_eps_bound(&values, &frag, eps, 0);
                    start = frag.end;
                }
            }
        }
    }

    #[test]
    fn log_domain_needs_shift_for_small_values() {
        let values = vec![0i64, 1, 2];
        // Without shift the exponential transform is undefined at y=0, ε=1.
        assert!(longest_fragment(&values, 0, Kind::Exponential, 1, 0).is_none());
        // With a shift making y+s−ε ≥ 1 it works.
        let frag = longest_fragment(&values, 0, Kind::Exponential, 1, 2).unwrap();
        assert!(!frag.is_empty());
        check_eps_bound(&values, &frag, 1, 2);
    }

    #[test]
    fn greedy_partition_tiles_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i64> = (0..500).map(|_| rng.random_range(-100..100)).collect();
        for kind in [Kind::Linear, Kind::Quadratic, Kind::Sqrt] {
            let frags = greedy_partition(&values, kind, 5, 0);
            assert_eq!(frags[0].start, 0);
            assert_eq!(frags.last().unwrap().end, values.len());
            for w in frags.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap/overlap in partition");
            }
        }
    }

    #[test]
    fn greedy_partition_is_minimal_for_linear() {
        // Optimality of the greedy longest-fragment strategy (Corollary 1):
        // compare against brute-force minimal partition count via DP.
        let mut rng = StdRng::seed_from_u64(21);
        let values: Vec<i64> = (0..60).map(|k| (k * k / 7) as i64 + rng.random_range(-1..2)).collect();
        let eps = 1u64;
        let greedy = greedy_partition(&values, Kind::Linear, eps, 0).len();
        // DP over all split points with brute feasibility.
        let n = values.len();
        let mut best = vec![usize::MAX; n + 1];
        best[0] = 0;
        for i in 0..n {
            if best[i] == usize::MAX {
                continue;
            }
            for j in i + 1..=n {
                if linear_feasible_brute(&values[i..j], eps) {
                    best[j] = best[j].min(best[i] + 1);
                } else {
                    break;
                }
            }
        }
        assert_eq!(greedy, best[n], "greedy not minimal");
    }

    #[test]
    fn single_point_fragments() {
        let values = vec![42i64];
        for kind in Kind::ALL {
            let frag = longest_fragment(&values, 0, kind, 0, 0).unwrap();
            assert_eq!(frag.len(), 1);
            // Log-domain kinds evaluate exp(ln 42), which may land one ulp
            // below 42 and floor to 41; the corrections absorb this.
            let slack = if kind.log_domain() { 1 } else { 0 };
            assert!(
                (model_value(&frag, 0, 0) - 42).unsigned_abs() <= slack,
                "{kind:?}: model {}",
                model_value(&frag, 0, 0)
            );
        }
    }

    #[test]
    fn view_fit_is_bit_identical_to_inline_fit() {
        let mut rng = StdRng::seed_from_u64(55);
        let values: Vec<i64> = {
            let mut v = -20i64;
            (0..400).map(|_| { v += rng.random_range(-6..7); v }).collect()
        };
        let shift = crate::partition::positivity_shift(&values, 8);
        let view = FitView::new(&values, shift, true);
        for kind in Kind::ALL {
            for eps in [0u64, 2, 8] {
                let mut start = 0;
                while start < values.len() {
                    let a = longest_fragment(&values, start, kind, eps, shift);
                    let b = longest_fragment_in(&view, start, kind, eps);
                    assert_eq!(a, b, "{kind:?} eps={eps} start={start}");
                    start = a.map_or(start + 1, |f| f.end);
                }
            }
        }
    }

    #[test]
    fn fragment_len_and_empty() {
        let f = Fragment { kind: Kind::Linear, params: Params::constant(0.0), start: 3, end: 7, origin: 3 };
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }
}
