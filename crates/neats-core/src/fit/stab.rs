//! Online stabbing-line maintenance — the engine behind Theorem 1.
//!
//! After the paper's per-kind change of variable, every ε-constraint has the
//! form `α_k ≤ m·t_k + b ≤ ω_k` with `t_k` strictly increasing: geometrically,
//! the line `y = m·t + b` must *stab* the vertical segment
//! `[(t_k, α_k), (t_k, ω_k)]` for every k. O'Rourke (CACM 1981) showed this
//! feasibility can be maintained online in amortised O(1) per segment by
//! tracking the extreme-slope feasible lines and two convex hulls of segment
//! endpoints. This module implements that algorithm; `fit::kinds` supplies
//! the per-function-kind transforms that feed it.
//!
//! Invariants maintained after each accepted segment:
//! * `line_max` — the feasible line of maximum slope, supported by a *floor*
//!   endpoint `(t_i, α_i)` on the left and a *ceiling* endpoint `(t_j, ω_j)`
//!   on the right (i < j).
//! * `line_min` — the feasible line of minimum slope, supported by a ceiling
//!   endpoint on the left and a floor endpoint on the right.
//! * `floor_hull` — the upper convex hull of floor endpoints seen so far
//!   (candidate left supports for future `line_max` rotations).
//! * `ceil_hull` — the lower convex hull of ceiling endpoints (candidate
//!   left supports for future `line_min` rotations).

/// A 2D point in the transformed (t, value) space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Transformed abscissa `t_k`.
    pub t: f64,
    /// Transformed ordinate (`α_k` or `ω_k`).
    pub v: f64,
}

impl Point {
    fn new(t: f64, v: f64) -> Self {
        Self { t, v }
    }
}

/// A line `y = slope·t + intercept` in the transformed space, i.e. a pair
/// `(m, b)` of feasible (transformed) function parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    /// Slope `m`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
}

impl Line {
    /// Evaluates the line at `t`.
    #[inline]
    pub fn at(&self, t: f64) -> f64 {
        self.slope * t + self.intercept
    }
}

#[inline]
fn slope_between(a: Point, b: Point) -> f64 {
    (b.v - a.v) / (b.t - a.t)
}

/// Cross product of (b−a) × (c−a); positive for a counter-clockwise turn.
#[inline]
fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.t - a.t) * (c.v - a.v) - (b.v - a.v) * (c.t - a.t)
}

/// A support pair defining an extreme line: the line through `left` and
/// `right` (left.t < right.t).
#[derive(Clone, Copy, Debug)]
struct Support {
    left: Point,
    right: Point,
}

impl Support {
    #[inline]
    fn slope(&self) -> f64 {
        slope_between(self.left, self.right)
    }

    #[inline]
    fn at(&self, t: f64) -> f64 {
        self.left.v + self.slope() * (t - self.left.t)
    }
}

/// Online feasibility of a stabbing line through vertical segments with
/// strictly increasing abscissae.
#[derive(Clone, Debug)]
pub struct StabbingLine {
    /// Upper hull of floor points, front-trimmed by `floor_start`.
    floor_hull: Vec<Point>,
    floor_start: usize,
    /// Lower hull of ceiling points, front-trimmed by `ceil_start`.
    ceil_hull: Vec<Point>,
    ceil_start: usize,
    line_max: Option<Support>,
    line_min: Option<Support>,
    count: usize,
    first: Option<(Point, Point)>, // (floor, ceil) of the first segment
    last_t: f64,
}

impl Default for StabbingLine {
    fn default() -> Self {
        Self::new()
    }
}

impl StabbingLine {
    /// Creates an empty instance (no segments yet; any line is feasible).
    pub fn new() -> Self {
        Self {
            floor_hull: Vec::new(),
            floor_start: 0,
            ceil_hull: Vec::new(),
            ceil_start: 0,
            line_max: None,
            line_min: None,
            count: 0,
            first: None,
            last_t: f64::NEG_INFINITY,
        }
    }

    /// Number of segments accepted so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no segment has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tries to add the vertical segment `[lo, hi]` at abscissa `t`.
    ///
    /// Returns `true` if a stabbing line still exists (the segment is
    /// accepted and the state updated); `false` if adding the segment would
    /// make the problem infeasible (the state is left unchanged, ending the
    /// fragment as in Theorem 1).
    ///
    /// `t` must be strictly greater than the previous abscissa and
    /// `lo ≤ hi`; non-finite inputs are rejected.
    pub fn try_add(&mut self, t: f64, lo: f64, hi: f64) -> bool {
        if !(t.is_finite() && lo.is_finite() && hi.is_finite()) || lo > hi || t <= self.last_t {
            return false;
        }
        let floor = Point::new(t, lo);
        let ceil = Point::new(t, hi);
        match self.count {
            0 => {
                self.first = Some((floor, ceil));
                self.floor_hull.push(floor);
                self.ceil_hull.push(ceil);
            }
            1 => {
                let (f1, c1) = self.first.expect("set at count 1");
                // Max-slope line: from the first floor up to the new ceiling.
                self.line_max = Some(Support { left: f1, right: ceil });
                // Min-slope line: from the first ceiling down to the new floor.
                self.line_min = Some(Support { left: c1, right: floor });
                self.push_floor(floor);
                self.push_ceil(ceil);
            }
            _ => {
                let lmax = self.line_max.expect("set from count 2");
                let lmin = self.line_min.expect("set from count 2");
                // Feasibility: even the extreme lines must reach the segment.
                if lmax.at(t) < lo || lmin.at(t) > hi {
                    return false;
                }
                // The new floor may force the min slope to rotate upwards.
                if lmin.at(t) < lo {
                    let anchor = self.rotate_min(floor);
                    self.line_min = Some(Support { left: anchor, right: floor });
                }
                // The new ceiling may force the max slope to rotate downwards.
                if lmax.at(t) > hi {
                    let anchor = self.rotate_max(ceil);
                    self.line_max = Some(Support { left: anchor, right: ceil });
                }
                self.push_floor(floor);
                self.push_ceil(ceil);
            }
        }
        self.count += 1;
        self.last_t = t;
        true
    }

    /// Finds the ceiling-hull point maximising the slope towards `p`
    /// (the new left support of `line_min`), advancing the hull front.
    fn rotate_min(&mut self, p: Point) -> Point {
        let hull = &self.ceil_hull;
        let mut i = self.ceil_start;
        while i + 1 < hull.len() && slope_between(hull[i + 1], p) >= slope_between(hull[i], p) {
            i += 1;
        }
        self.ceil_start = i;
        hull[i]
    }

    /// Finds the floor-hull point minimising the slope towards `p`
    /// (the new left support of `line_max`), advancing the hull front.
    fn rotate_max(&mut self, p: Point) -> Point {
        let hull = &self.floor_hull;
        let mut i = self.floor_start;
        while i + 1 < hull.len() && slope_between(hull[i + 1], p) <= slope_between(hull[i], p) {
            i += 1;
        }
        self.floor_start = i;
        hull[i]
    }

    /// Inserts a floor point into the upper hull (clockwise turns only).
    fn push_floor(&mut self, p: Point) {
        while self.floor_hull.len() >= self.floor_start + 2 {
            let n = self.floor_hull.len();
            if cross(self.floor_hull[n - 2], self.floor_hull[n - 1], p) >= 0.0 {
                self.floor_hull.pop();
            } else {
                break;
            }
        }
        self.floor_hull.push(p);
    }

    /// Inserts a ceiling point into the lower hull (counter-clockwise turns
    /// only).
    fn push_ceil(&mut self, p: Point) {
        while self.ceil_hull.len() >= self.ceil_start + 2 {
            let n = self.ceil_hull.len();
            if cross(self.ceil_hull[n - 2], self.ceil_hull[n - 1], p) <= 0.0 {
                self.ceil_hull.pop();
            } else {
                break;
            }
        }
        self.ceil_hull.push(p);
    }

    /// Returns a feasible line for all accepted segments, or `None` if no
    /// segment was accepted.
    ///
    /// With two or more segments, the returned line bisects the extreme
    /// slopes through the intersection point of the two extreme lines, which
    /// is feasible by convexity of the (m, b) polygon (paper §II).
    pub fn solution(&self) -> Option<Line> {
        match self.count {
            0 => None,
            1 => {
                let (f, c) = self.first.expect("single segment");
                Some(Line { slope: 0.0, intercept: (f.v + c.v) / 2.0 })
            }
            _ => {
                let lmax = self.line_max.expect("two or more segments");
                let lmin = self.line_min.expect("two or more segments");
                let (smax, smin) = (lmax.slope(), lmin.slope());
                let slope = 0.5 * (smax + smin);
                // Intersection of the two extreme lines.
                let bmax = lmax.left.v - smax * lmax.left.t;
                let bmin = lmin.left.v - smin * lmin.left.t;
                let intercept = if (smax - smin).abs() > f64::EPSILON * (1.0 + smax.abs()) {
                    let ix = (bmin - bmax) / (smax - smin);
                    let iy = smax * ix + bmax;
                    iy - slope * ix
                } else {
                    0.5 * (bmax + bmin)
                };
                Some(Line { slope, intercept })
            }
        }
    }

    /// The current feasible slope interval `[min, max]`; `None` with fewer
    /// than two segments (where the slope is unconstrained).
    pub fn slope_interval(&self) -> Option<(f64, f64)> {
        Some((self.line_min?.slope(), self.line_max?.slope()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Brute-force feasibility: does a line stab every segment? Checked by
    /// LP over the candidate support slopes — O(n²) pairs suffice because an
    /// extreme feasible line can always be rotated onto two endpoints.
    fn feasible_brute(segs: &[(f64, f64, f64)]) -> bool {
        if segs.len() <= 2 {
            return segs.iter().all(|&(_, lo, hi)| lo <= hi);
        }
        // Max slope from pairs (floor_i, ceil_j) i<j; min slope from (ceil_i, floor_j).
        let mut smax = f64::INFINITY;
        let mut smin = f64::NEG_INFINITY;
        for i in 0..segs.len() {
            for j in i + 1..segs.len() {
                let dt = segs[j].0 - segs[i].0;
                smax = smax.min((segs[j].2 - segs[i].1) / dt);
                smin = smin.max((segs[j].1 - segs[i].2) / dt);
            }
        }
        if smin > smax + 1e-9 {
            return false;
        }
        // Check that some intercept works for a few candidate slopes.
        for &m in &[smin, smax, 0.5 * (smin + smax)] {
            let mut blo = f64::NEG_INFINITY;
            let mut bhi = f64::INFINITY;
            for &(t, lo, hi) in segs {
                blo = blo.max(lo - m * t);
                bhi = bhi.min(hi - m * t);
            }
            if blo <= bhi + 1e-9 {
                return true;
            }
        }
        false
    }

    fn check_line_stabs(line: Line, segs: &[(f64, f64, f64)], tol: f64) {
        for &(t, lo, hi) in segs {
            let y = line.at(t);
            assert!(
                y >= lo - tol && y <= hi + tol,
                "line {line:?} misses segment at t={t}: y={y} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn empty_has_no_solution() {
        let s = StabbingLine::new();
        assert!(s.solution().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn single_segment_horizontal_midline() {
        let mut s = StabbingLine::new();
        assert!(s.try_add(1.0, 3.0, 7.0));
        let l = s.solution().unwrap();
        assert_eq!(l.slope, 0.0);
        assert_eq!(l.intercept, 5.0);
    }

    #[test]
    fn two_segments_always_feasible() {
        let mut s = StabbingLine::new();
        assert!(s.try_add(1.0, 0.0, 1.0));
        assert!(s.try_add(2.0, 100.0, 101.0));
        let l = s.solution().unwrap();
        check_line_stabs(l, &[(1.0, 0.0, 1.0), (2.0, 100.0, 101.0)], 1e-9);
    }

    #[test]
    fn rejects_decreasing_t_and_bad_input() {
        let mut s = StabbingLine::new();
        assert!(s.try_add(2.0, 0.0, 1.0));
        assert!(!s.try_add(2.0, 0.0, 1.0)); // equal t
        assert!(!s.try_add(1.0, 0.0, 1.0)); // smaller t
        assert!(!s.try_add(3.0, 1.0, 0.0)); // lo > hi
        assert!(!s.try_add(f64::NAN, 0.0, 1.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn exact_line_accepts_many_points() {
        // y = 2t + 1 with ±0.5 slack accepts any number of points.
        let mut s = StabbingLine::new();
        for k in 1..=1000 {
            let t = k as f64;
            let y = 2.0 * t + 1.0;
            assert!(s.try_add(t, y - 0.5, y + 0.5), "at k={k}");
        }
        let l = s.solution().unwrap();
        assert!((l.slope - 2.0).abs() < 1e-6);
        assert!((l.intercept - 1.0).abs() < 1e-3);
    }

    #[test]
    fn detects_infeasibility_on_break() {
        // A v-shape that no single line with tight slack can follow.
        let mut s = StabbingLine::new();
        assert!(s.try_add(1.0, 9.9, 10.1));
        assert!(s.try_add(2.0, 4.9, 5.1));
        assert!(s.try_add(3.0, 0.0, 0.2)); // still on the descending line
        assert!(!s.try_add(4.0, 4.9, 5.1)); // turns back up: infeasible
        assert_eq!(s.len(), 3);
        // State unchanged: solution still stabs the first three.
        let l = s.solution().unwrap();
        check_line_stabs(l, &[(1.0, 9.9, 10.1), (2.0, 4.9, 5.1), (3.0, 0.0, 0.2)], 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..300 {
            let n = rng.random_range(3..30);
            let noise = rng.random_range(0.1..5.0);
            let slope = rng.random_range(-10.0..10.0);
            let mut segs: Vec<(f64, f64, f64)> = Vec::new();
            let mut t = 0.0;
            for _ in 0..n {
                t += rng.random_range(0.1..3.0);
                let mid = slope * t + rng.random_range(-noise..noise);
                let half = rng.random_range(0.0..noise);
                segs.push((t, mid - half, mid + half));
            }
            let mut s = StabbingLine::new();
            let mut accepted = Vec::new();
            for &(t, lo, hi) in &segs {
                if s.try_add(t, lo, hi) {
                    accepted.push((t, lo, hi));
                } else {
                    break;
                }
            }
            // 1. whatever was accepted must be brute-force feasible
            assert!(feasible_brute(&accepted), "trial {trial}: accepted set infeasible");
            // 2. the returned line must stab all accepted segments
            if let Some(line) = s.solution() {
                check_line_stabs(line, &accepted, 1e-6);
            }
            // 3. maximality: if we stopped early, accepted + next must be infeasible
            if accepted.len() < segs.len() {
                let mut extended = accepted.clone();
                extended.push(segs[accepted.len()]);
                assert!(
                    !feasible_brute(&extended),
                    "trial {trial}: stopped early at {} although feasible",
                    accepted.len()
                );
            }
        }
    }

    #[test]
    fn degenerate_zero_width_segments_exact_interpolation() {
        // Segments of zero height on a line: must accept all of them.
        let mut s = StabbingLine::new();
        for k in 1..=100 {
            let t = k as f64;
            let y = -3.0 * t + 7.0;
            assert!(s.try_add(t, y, y));
        }
        let l = s.solution().unwrap();
        assert!((l.slope + 3.0).abs() < 1e-9);
        assert!((l.intercept - 7.0).abs() < 1e-7);
    }

    #[test]
    fn slope_interval_narrows() {
        let mut s = StabbingLine::new();
        s.try_add(1.0, 0.0, 2.0);
        s.try_add(2.0, 1.0, 3.0);
        let (lo1, hi1) = s.slope_interval().unwrap();
        s.try_add(3.0, 2.0, 4.0);
        let (lo2, hi2) = s.slope_interval().unwrap();
        assert!(lo2 >= lo1 - 1e-12 && hi2 <= hi1 + 1e-12);
        assert!(lo2 <= hi2);
    }
}
