//! The nonlinear function families of Table I (plus the 3-parameter anchored
//! families of §III-A) and their reductions to the stabbing-line problem.
//!
//! Each kind defines:
//! * a **transform** mapping a data point `(u, y)` and error bound ε to a
//!   vertical segment `(t, α, ω)` in the space where the function is linear
//!   (`α ≤ m·t + b ≤ ω`, Theorem 1);
//! * an **evaluation** mapping fitted `(m, b[, extra])` parameters and a
//!   local coordinate `u` back to the approximated value.
//!
//! Coordinates are *local to the fragment*: `u = 1, 2, …` from the fit
//! origin (the paper's footnote-4 horizontal shift), which keeps the
//! transforms well-defined (`ln u`, divisions by `u − 1`) and numerically
//! tame. Log-domain kinds (exponential, power, Gaussian) operate on values
//! shifted by a global per-series constant that makes `y − ε` positive
//! (paper footnote 2).

/// One of the function families NeaTS can fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Kind {
    /// `θ1·u + θ2` — the classic linear family.
    Linear = 0,
    /// `θ1·u² + θ2·u + θ3`, anchored through the fragment's first point.
    Quadratic = 1,
    /// `θ2·e^(θ1·u)` (log-domain).
    Exponential = 2,
    /// `θ1·√u + θ2` — the paper's "radical" family.
    Sqrt = 3,
    /// `θ1·ln u + b` (the paper's `ln(θ2·x^θ1)`).
    Logarithmic = 4,
    /// `θ2·u^θ1` (log-domain power family).
    Power = 5,
    /// `θ1·u² + θ2` (quadratic with no linear term).
    QuadOffset = 6,
    /// `θ1·u² + θ2·u`.
    QuadLinear = 7,
    /// `θ1·u³ + θ2·u`.
    CubicLinear = 8,
    /// `θ1·u³ + θ2·u²`.
    CubicQuad = 9,
    /// `e^(θ1·u² + θ2·u + θ3)`, anchored Gaussian-like family (log-domain).
    Gaussian = 10,
}

/// Fitted parameters in the transformed space: the stabbing line `(m, b)`
/// plus an `extra` third parameter for anchored kinds (`θ3` in the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Transformed slope `m = φ(θ1)`.
    pub m: f64,
    /// Transformed intercept `b = ψ(θ2)`.
    pub b: f64,
    /// Third parameter for anchored kinds; 0 otherwise.
    pub extra: f64,
}

impl Params {
    /// Parameters of the constant function `y = c`.
    pub fn constant(c: f64) -> Self {
        Self { m: 0.0, b: c, extra: 0.0 }
    }
}

impl Kind {
    /// The paper's default NeaTS function set: "We use four types of
    /// functions — namely, linear, exponential, quadratic, and radical"
    /// (§IV-A).
    pub const NEATS_DEFAULT: [Kind; 4] = [Kind::Linear, Kind::Exponential, Kind::Quadratic, Kind::Sqrt];

    /// Every implemented kind.
    pub const ALL: [Kind; 11] = [
        Kind::Linear,
        Kind::Quadratic,
        Kind::Exponential,
        Kind::Sqrt,
        Kind::Logarithmic,
        Kind::Power,
        Kind::QuadOffset,
        Kind::QuadLinear,
        Kind::CubicLinear,
        Kind::CubicQuad,
        Kind::Gaussian,
    ];

    /// Decodes a kind from its `repr(u8)` tag.
    pub fn from_tag(tag: u8) -> Option<Kind> {
        Kind::ALL.iter().copied().find(|k| *k as u8 == tag)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Linear => "linear",
            Kind::Quadratic => "quadratic",
            Kind::Exponential => "exponential",
            Kind::Sqrt => "sqrt",
            Kind::Logarithmic => "logarithmic",
            Kind::Power => "power",
            Kind::QuadOffset => "quad-offset",
            Kind::QuadLinear => "quad-linear",
            Kind::CubicLinear => "cubic-linear",
            Kind::CubicQuad => "cubic-quad",
            Kind::Gaussian => "gaussian",
        }
    }

    /// Whether fitting happens on log-transformed values, requiring the
    /// global positivity shift (paper footnote 2).
    pub fn log_domain(self) -> bool {
        matches!(self, Kind::Exponential | Kind::Power | Kind::Gaussian)
    }

    /// Whether the family has a third parameter anchored through the
    /// fragment's first data point (§III-A, three-parameter functions).
    pub fn anchored(self) -> bool {
        matches!(self, Kind::Quadratic | Kind::Gaussian)
    }

    /// Number of stored parameters (the paper's contribution to κ_f).
    pub fn param_count(self) -> usize {
        if self.anchored() {
            3
        } else {
            2
        }
    }

    /// Transforms the constraint `|f(u) − y| ≤ ε` into the stabbing segment
    /// `(t, α, ω)`, for non-anchored kinds.
    ///
    /// `u ≥ 1` is the local coordinate; `y` is the (already shifted, for
    /// log-domain kinds) value as f64. Returns `None` when the transform is
    /// undefined (e.g. `y − ε ≤ 0` in a log domain).
    #[inline]
    pub fn transform(self, u: f64, y: f64, eps: f64) -> Option<(f64, f64, f64)> {
        debug_assert!(!self.anchored());
        let (lo, hi) = (y - eps, y + eps);
        match self {
            Kind::Linear => Some((u, lo, hi)),
            Kind::Sqrt => Some((u.sqrt(), lo, hi)),
            Kind::Logarithmic => Some((u.ln(), lo, hi)),
            Kind::QuadOffset => Some((u * u, lo, hi)),
            Kind::QuadLinear => Some((u, lo / u, hi / u)),
            Kind::CubicLinear => Some((u * u, lo / u, hi / u)),
            Kind::CubicQuad => Some((u, lo / (u * u), hi / (u * u))),
            Kind::Exponential => {
                if lo <= 0.0 {
                    return None;
                }
                Some((u, lo.ln(), hi.ln()))
            }
            Kind::Power => {
                if lo <= 0.0 {
                    return None;
                }
                Some((u.ln(), lo.ln(), hi.ln()))
            }
            Kind::Quadratic | Kind::Gaussian => unreachable!("anchored kinds use transform_anchored"),
        }
    }

    /// Transforms the constraint for anchored three-parameter kinds, given
    /// the anchor value `y0` at local coordinate 1. Only valid for `u > 1`.
    #[inline]
    pub fn transform_anchored(self, u: f64, y: f64, y0: f64, eps: f64) -> Option<(f64, f64, f64)> {
        debug_assert!(self.anchored());
        debug_assert!(u > 1.0);
        let du = u - 1.0;
        match self {
            // f(u) = m·u² + b·u + extra with f(1) = y0:
            //   (y − y0 − ε)/(u − 1) ≤ (u + 1)·m + b ≤ (y − y0 + ε)/(u − 1)
            Kind::Quadratic => Some(((u + 1.0), (y - y0 - eps) / du, (y - y0 + eps) / du)),
            // ln f(u) = m·u² + b·u + extra with f(1) = y0 (log space anchor):
            Kind::Gaussian => {
                if y - eps <= 0.0 || y0 <= 0.0 {
                    return None;
                }
                let ly0 = y0.ln();
                Some(((u + 1.0), ((y - eps).ln() - ly0) / du, ((y + eps).ln() - ly0) / du))
            }
            _ => unreachable!("transform_anchored on non-anchored kind"),
        }
    }

    /// Completes the parameters for anchored kinds from the fitted stabbing
    /// line and the anchor value `y0` (identity for other kinds).
    #[inline]
    pub fn finish_params(self, m: f64, b: f64, y0: f64) -> Params {
        let extra = match self {
            Kind::Quadratic => y0 - m - b,
            Kind::Gaussian => y0.ln() - m - b,
            _ => 0.0,
        };
        Params { m, b, extra }
    }

    /// Evaluates the fitted function at local coordinate `u ≥ 1`.
    ///
    /// For log-domain kinds the result approximates the *shifted* value; the
    /// caller subtracts the shift.
    #[inline]
    pub fn eval(self, p: Params, u: f64) -> f64 {
        match self {
            Kind::Linear => p.m * u + p.b,
            Kind::Quadratic => (p.m * u + p.b) * u + p.extra,
            Kind::Exponential => (p.m * u + p.b).exp(),
            Kind::Sqrt => p.m * u.sqrt() + p.b,
            Kind::Logarithmic => p.m * u.ln() + p.b,
            Kind::Power => (p.m * u.ln() + p.b).exp(),
            Kind::QuadOffset => p.m * u * u + p.b,
            Kind::QuadLinear => (p.m * u + p.b) * u,
            Kind::CubicLinear => (p.m * u * u + p.b) * u,
            Kind::CubicQuad => (p.m * u + p.b) * u * u,
            Kind::Gaussian => ((p.m * u + p.b) * u + p.extra).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For every non-anchored kind: if a segment (t, α, ω) produced by the
    /// transform is stabbed by a line (m, b), then |eval − y| ≤ ε.
    #[test]
    fn transform_eval_consistency() {
        let kinds = [
            Kind::Linear,
            Kind::Sqrt,
            Kind::Logarithmic,
            Kind::QuadOffset,
            Kind::QuadLinear,
            Kind::CubicLinear,
            Kind::CubicQuad,
            Kind::Exponential,
            Kind::Power,
        ];
        for kind in kinds {
            // Pick a ground-truth parameter pair and evaluate it exactly.
            let p = Params { m: 0.75, b: 2.5, extra: 0.0 };
            for u in 1..=50 {
                let u = u as f64;
                let y = kind.eval(p, u);
                let eps = 1.0;
                let Some((t, lo, hi)) = kind.transform(u, y, eps) else {
                    panic!("{kind:?}: transform undefined at u={u}, y={y}");
                };
                // The true parameters must satisfy the transformed constraint.
                let v = p.m * t + p.b;
                assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "{kind:?} at u={u}: m·t+b={v} outside [{lo}, {hi}]"
                );
                // And a line touching the bounds maps back within ε.
                for &vv in &[lo, hi] {
                    // construct params with m unchanged, b adjusted to hit vv at t
                    let p2 = Params { m: p.m, b: p.b + (vv - v), extra: 0.0 };
                    let y2 = kind.eval(p2, u);
                    let tol = eps + 1e-9 * y.abs().max(1.0); // relative f64 slack
                    assert!(
                        (y2 - y).abs() <= tol,
                        "{kind:?} at u={u}: bound point maps to error {}",
                        (y2 - y).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn anchored_quadratic_transform_consistency() {
        let truth = Params { m: 0.3, b: -1.2, extra: 10.0 };
        let y0 = Kind::Quadratic.eval(truth, 1.0);
        assert!((y0 - (0.3 - 1.2 + 10.0)).abs() < 1e-12);
        for u in 2..=30 {
            let u = u as f64;
            let y = Kind::Quadratic.eval(truth, u);
            let (t, lo, hi) = Kind::Quadratic.transform_anchored(u, y, y0, 0.5).unwrap();
            let v = truth.m * t + truth.b;
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "u={u}: {v} not in [{lo}, {hi}]");
        }
        // finish_params reconstructs extra from the anchor
        let p = Kind::Quadratic.finish_params(truth.m, truth.b, y0);
        assert!((p.extra - truth.extra).abs() < 1e-9);
    }

    #[test]
    fn anchored_gaussian_transform_consistency() {
        let truth = Params { m: -0.002, b: 0.08, extra: 3.0 };
        let y0 = Kind::Gaussian.eval(truth, 1.0);
        for u in 2..=30 {
            let u = u as f64;
            let y = Kind::Gaussian.eval(truth, u);
            let (t, lo, hi) = Kind::Gaussian.transform_anchored(u, y, y0, 0.5).unwrap();
            let v = truth.m * t + truth.b;
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "u={u}: {v} not in [{lo}, {hi}]");
        }
        let p = Kind::Gaussian.finish_params(truth.m, truth.b, y0);
        assert!((p.extra - truth.extra).abs() < 1e-9);
    }

    #[test]
    fn log_domain_rejects_non_positive() {
        assert!(Kind::Exponential.transform(1.0, 0.5, 1.0).is_none());
        assert!(Kind::Power.transform(2.0, -3.0, 1.0).is_none());
        assert!(Kind::Exponential.transform(1.0, 2.0, 1.0).is_some());
    }

    #[test]
    fn tags_roundtrip() {
        for k in Kind::ALL {
            assert_eq!(Kind::from_tag(k as u8), Some(k));
        }
        assert_eq!(Kind::from_tag(200), None);
    }

    #[test]
    fn transform_t_is_increasing_in_u() {
        for kind in Kind::ALL.iter().filter(|k| !k.anchored()) {
            let mut prev = f64::NEG_INFINITY;
            for u in 1..=100 {
                let (t, _, _) = kind.transform(u as f64, 100.0, 1.0).unwrap();
                assert!(t > prev, "{kind:?}: t not increasing at u={u}");
                prev = t;
            }
        }
        for kind in [Kind::Quadratic, Kind::Gaussian] {
            let mut prev = f64::NEG_INFINITY;
            for u in 2..=100 {
                let (t, _, _) = kind.transform_anchored(u as f64, 100.0, 90.0, 1.0).unwrap();
                assert!(t > prev, "{kind:?}: t not increasing at u={u}");
                prev = t;
            }
        }
    }

    #[test]
    fn param_counts() {
        assert_eq!(Kind::Linear.param_count(), 2);
        assert_eq!(Kind::Quadratic.param_count(), 3);
        assert_eq!(Kind::Gaussian.param_count(), 3);
        assert!(Kind::NEATS_DEFAULT.contains(&Kind::Quadratic));
    }
}
