//! Streaming ingestion: compress an unbounded value stream with bounded
//! memory by building NeaTS chunks incrementally.
//!
//! Algorithm 1 is an offline optimisation over the whole series (its DP
//! state is O(n)). For the ingestion scenario the paper discusses in
//! §IV-C1 — "using a lightweight compressor when the time series is first
//! ingested, and running NeaTS later on (or in the background)" — this
//! module offers the direct alternative: a [`NeaTSWriter`] that buffers a
//! fixed-size chunk, compresses it with the full pipeline, and appends it
//! to a [`ChunkedNeaTS`] whose query operations delegate to the right chunk
//! in O(1). Compression memory is O(chunk), and each chunk is
//! size-optimal for its own data; the price versus offline NeaTS is only
//! the fragments cut at chunk boundaries.
//!
//! The writer runs whatever partitioner configuration its
//! [`NeaTSBuilder`] carries — including [`NeaTSBuilder::threads`], so each
//! chunk's stage-1 fitting fans out across cores while ingestion stays
//! single-threaded and deterministic.

use crate::layout::NeaTSCompressed;
use crate::NeaTSBuilder;
use timeseries::{CompressedSeries, TimeSeries};

/// Default chunk length (points) for streaming ingestion.
pub const DEFAULT_CHUNK: usize = 1 << 16;

/// An incremental NeaTS compressor with bounded memory.
///
/// ```
/// use neats_core::{NeaTS, NeaTSWriter};
/// use timeseries::CompressedSeries;
///
/// let mut writer = NeaTSWriter::new(NeaTS::builder(), 256);
/// writer.extend((0..1000).map(|k| k * 3));
/// let store = writer.finish();
/// assert_eq!(store.chunk_count(), 4);
/// assert_eq!(store.get(999), 2997);
/// ```
#[derive(Clone, Debug)]
pub struct NeaTSWriter {
    builder: NeaTSBuilder,
    chunk_size: usize,
    buffer: Vec<i64>,
    chunks: Vec<NeaTSCompressed>,
}

impl NeaTSWriter {
    /// Creates a writer compressing `chunk_size`-point chunks with
    /// `builder`'s configuration.
    pub fn new(builder: NeaTSBuilder, chunk_size: usize) -> Self {
        assert!(chunk_size > 0);
        Self { builder, chunk_size, buffer: Vec::with_capacity(chunk_size), chunks: Vec::new() }
    }

    /// Creates a writer with the default configuration and chunk size.
    pub fn with_defaults() -> Self {
        Self::new(crate::NeaTS::builder(), DEFAULT_CHUNK)
    }

    /// Number of values ingested so far.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum::<usize>() + self.buffer.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingests one value, compressing a chunk when the buffer fills.
    pub fn push(&mut self, value: i64) {
        self.buffer.push(value);
        if self.buffer.len() == self.chunk_size {
            self.flush_chunk();
        }
    }

    /// Ingests many values.
    pub fn extend<I: IntoIterator<Item = i64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    fn flush_chunk(&mut self) {
        let ts = TimeSeries::from_values(std::mem::take(&mut self.buffer));
        self.chunks.push(self.builder.build(&ts));
        self.buffer = Vec::with_capacity(self.chunk_size);
    }

    /// Compresses the buffered tail into a chunk *now*, forcing a chunk
    /// boundary (a no-op when nothing is buffered). The resulting chunk may
    /// be shorter than the configured chunk size.
    ///
    /// This is the **head-flush** hook live-ingestion layers need: a mutable
    /// in-memory head can keep a writer hot and flush it on demand (before a
    /// seal, a shutdown, or a consistency point) without giving the writer
    /// up, unlike [`Self::finish`].
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            self.flush_chunk();
        }
    }

    /// The chunks compressed so far (everything ingested except the
    /// [`Self::buffered`] tail). All but the last may only be full chunks;
    /// short chunks appear where [`Self::flush`] forced a boundary.
    pub fn chunks(&self) -> &[NeaTSCompressed] {
        &self.chunks
    }

    /// The raw, not-yet-compressed tail (always shorter than the chunk
    /// size unless a flush is pending).
    pub fn buffered(&self) -> &[i64] {
        &self.buffer
    }

    /// The value at ingestion position `k`, served from the compressed
    /// chunks or the raw tail — random access into a *live* writer.
    ///
    /// # Panics
    /// If `k >= self.len()`.
    pub fn value_at(&self, k: usize) -> i64 {
        let mut base = 0usize;
        for c in &self.chunks {
            if k < base + c.len() {
                return c.get(k - base);
            }
            base += c.len();
        }
        self.buffer[k - base]
    }

    /// Compresses any buffered tail and returns the queryable result.
    pub fn finish(mut self) -> ChunkedNeaTS {
        if !self.buffer.is_empty() {
            self.flush_chunk();
        }
        // Cumulative chunk start positions; chunks may have uneven lengths
        // when `flush` forced boundaries, so lookups use these offsets
        // rather than assuming a uniform chunk size.
        let mut starts = Vec::with_capacity(self.chunks.len() + 1);
        let mut n = 0usize;
        for c in &self.chunks {
            starts.push(n);
            n += c.len();
        }
        ChunkedNeaTS { chunks: self.chunks, starts, n }
    }
}

/// A sequence of independently-compressed NeaTS chunks behaving as one
/// compressed series. Chunk lengths may be uneven (a [`NeaTSWriter::flush`]
/// forces a boundary wherever the buffer happens to end).
#[derive(Clone, Debug)]
pub struct ChunkedNeaTS {
    chunks: Vec<NeaTSCompressed>,
    /// `starts[i]` = series position of chunk `i`'s first value.
    starts: Vec<usize>,
    n: usize,
}

impl ChunkedNeaTS {
    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Access to an individual chunk (e.g. for re-compaction policies).
    pub fn chunk(&self, i: usize) -> &NeaTSCompressed {
        &self.chunks[i]
    }

    /// Index of the chunk holding series position `k` (caller checks
    /// `k < len`).
    fn chunk_of(&self, k: usize) -> usize {
        self.starts.partition_point(|&s| s <= k) - 1
    }
}

impl CompressedSeries for ChunkedNeaTS {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        16 + self.chunks.iter().map(|c| c.size_in_bytes() + 8).sum::<usize>()
    }

    fn get(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let ci = self.chunk_of(k);
        self.chunks[ci].get(k - self.starts[ci])
    }

    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for c in &self.chunks {
            out.extend(c.decompress());
        }
        out
    }

    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut k = start;
        let mut ci = self.chunk_of(start);
        while k < end {
            let base = self.starts[ci];
            let to = (base + self.chunks[ci].len()).min(end);
            self.chunks[ci].scan_range(k - base, to - k, out);
            k = to;
            ci += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeaTS;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn stream(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        (0..n).map(|_| { v += rng.random_range(-10..11); v }).collect()
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let values = stream(10_000, 1);
        let mut w = NeaTSWriter::new(NeaTS::builder(), 1024);
        w.extend(values.iter().copied());
        let c = w.finish();
        assert_eq!(c.chunk_count(), 10); // 9 full + tail
        assert_eq!(c.len(), values.len());
        assert_eq!(c.decompress(), values);
        for k in [0usize, 1023, 1024, 5000, 9999] {
            assert_eq!(c.get(k), values[k], "get({k})");
        }
    }

    #[test]
    fn scan_spanning_chunks() {
        let values = stream(5000, 2);
        let mut w = NeaTSWriter::new(NeaTS::builder(), 512);
        w.extend(values.iter().copied());
        let c = w.finish();
        let mut out = Vec::new();
        c.scan_range(400, 1500, &mut out);
        assert_eq!(out, &values[400..1900]);
    }

    #[test]
    fn empty_and_partial() {
        let c = NeaTSWriter::with_defaults().finish();
        assert!(c.is_empty());
        assert_eq!(c.decompress(), Vec::<i64>::new());

        let mut w = NeaTSWriter::new(NeaTS::builder(), 1000);
        w.extend([1, 2, 3]);
        assert_eq!(w.len(), 3);
        let c = w.finish();
        assert_eq!(c.decompress(), vec![1, 2, 3]);
    }

    #[test]
    fn chunked_size_is_close_to_offline() {
        // Boundary-cut fragments cost a little; it must stay small.
        let values = stream(32_768, 3);
        let ts = TimeSeries::from_values(values.clone());
        let offline = NeaTS::compress(&ts).size_in_bytes();
        let mut w = NeaTSWriter::new(NeaTS::builder(), 4096);
        w.extend(values);
        let chunked = w.finish().size_in_bytes();
        assert!(
            (chunked as f64) < 1.25 * offline as f64,
            "chunked {chunked} vs offline {offline}"
        );
    }

    #[test]
    fn chunked_output_is_thread_count_invariant() {
        // The builder's threads knob reaches each chunk's partitioner and
        // must not change what gets stored.
        let values = stream(6000, 9);
        let sizes: Vec<usize> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                let mut w = NeaTSWriter::new(NeaTS::builder().threads(t), 1024);
                w.extend(values.iter().copied());
                let c = w.finish();
                assert_eq!(c.decompress(), values, "threads={t}");
                c.size_in_bytes()
            })
            .collect();
        assert!(sizes.windows(2).all(|p| p[0] == p[1]), "sizes differ across threads: {sizes:?}");
    }

    #[test]
    fn flush_forces_short_chunks_and_keeps_queries_exact() {
        let values = stream(3000, 7);
        let mut w = NeaTSWriter::new(NeaTS::builder(), 1024);
        for (k, &v) in values.iter().enumerate() {
            w.push(v);
            if k == 99 || k == 1499 {
                w.flush(); // short chunks at 100 and (1500 - 1024 =) 476 points
            }
        }
        w.flush();
        w.flush(); // idempotent on an empty buffer
        assert!(w.buffered().is_empty());
        let lens: Vec<usize> = w.chunks().iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![100, 1024, 376, 1024, 476]);

        // Random access into the live writer and into the finished store
        // both see the exact stream despite the uneven boundaries.
        for k in [0usize, 99, 100, 1123, 1499, 1500, 2999] {
            assert_eq!(w.value_at(k), values[k], "value_at({k})");
        }
        let c = w.finish();
        assert_eq!(c.decompress(), values);
        for k in [0usize, 99, 100, 1123, 1499, 1500, 2999] {
            assert_eq!(c.get(k), values[k], "get({k})");
        }
        let mut out = Vec::new();
        c.scan_range(50, 2000, &mut out);
        assert_eq!(out, &values[50..2050]);
    }

    #[test]
    fn value_at_reads_compressed_chunks_and_raw_tail() {
        let mut w = NeaTSWriter::new(NeaTS::builder(), 8);
        w.extend(0..20);
        assert_eq!(w.chunks().len(), 2);
        assert_eq!(w.buffered(), &[16, 17, 18, 19]);
        for k in 0..20 {
            assert_eq!(w.value_at(k), k as i64);
        }
    }

    #[test]
    fn writer_len_tracks_buffer_and_chunks() {
        let mut w = NeaTSWriter::new(NeaTS::builder(), 10);
        assert!(w.is_empty());
        w.extend(0..25);
        assert_eq!(w.len(), 25);
        assert_eq!(w.finish().len(), 25);
    }
}
