//! Fault injection shared by the whole stack: an in-memory file model for
//! crash-consistency tests, and a process-global **failpoint registry**
//! that lets tests (and operators reproducing incidents) inject I/O
//! failures at named sites in store, ingest, and serve.
//!
//! ## The registry
//!
//! Production code guards fallible operations with
//! [`triggered`]`("site.name")`; the call is a single relaxed atomic load
//! when no failpoint is configured, so shipping the hooks costs nothing.
//! Sites are armed either programmatically ([`set`] / [`clear`] /
//! [`clear_all`], the test path) or from the environment at first use:
//!
//! ```text
//! NEATS_FAILPOINT="wal.append=err@3,dir.sync=err*2"
//! ```
//!
//! The spec grammar per site is `err[@N][*C]`: fail every hit, starting at
//! the `N`-th hit after arming (1-based, default 1), for at most `C` hits
//! (default unlimited). `off` disarms a site. Hits are counted only while
//! a site is configured, so `@N` means "the N-th hit after arming" —
//! the natural reading for tests.
//!
//! Registered sites in this workspace: `wal.append`, `wal.sync`,
//! `wal.create`, `wal.repair`, `seal.pack`, `manifest.commit`, `dir.sync`,
//! `store.open_segment`.
//!
//! The registry is process-global: tests that arm it from one binary must
//! serialize with each other (a `static Mutex` guard), and must
//! [`clear_all`] on exit so later tests see a clean slate.
//!
//! ## The file model
//!
//! [`FailpointFile`] is the crash-consistency model used by the ingest
//! fault matrix: bytes written before the last effective sync barrier are
//! durable; bytes after it may survive in full, in part, or not at all. A
//! "crash image" is any prefix of the written bytes at least as long as
//! the synced length.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable listing failpoints to arm at startup
/// (`site=spec` pairs, comma-separated).
pub const FAILPOINT_ENV: &str = "NEATS_FAILPOINT";

/// One armed site: fail hits `from..from+count` (1-based, `count = None`
/// meaning unbounded), with `hits` counting every [`triggered`] call since
/// arming.
#[derive(Clone, Debug)]
struct Point {
    hits: u64,
    from: u64,
    count: Option<u64>,
}

/// Fast path: false ⇒ no site is armed anywhere, so [`triggered`] returns
/// without touching the registry lock.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Point>> {
    static REG: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var(FAILPOINT_ENV) {
            // A malformed env spec must not be silently ignored in a test
            // run — but production must not panic either. Arm what parses.
            for (site, point) in parse_list(&spec).unwrap_or_default() {
                map.insert(site, point);
            }
        }
        if !map.is_empty() {
            ACTIVE.store(true, Ordering::SeqCst);
        }
        Mutex::new(map)
    })
}

/// Parses a comma-separated `site=spec` list.
fn parse_list(s: &str) -> Result<Vec<(String, Point)>, String> {
    let mut out = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (site, spec) =
            part.split_once('=').ok_or_else(|| format!("failpoint `{part}`: missing `=`"))?;
        if let Some(p) = parse_spec(spec.trim())? {
            out.push((site.trim().to_string(), p));
        }
    }
    Ok(out)
}

/// Parses one `err[@N][*C]` / `off` spec; `Ok(None)` means disarmed.
fn parse_spec(spec: &str) -> Result<Option<Point>, String> {
    if spec == "off" {
        return Ok(None);
    }
    let rest = spec
        .strip_prefix("err")
        .ok_or_else(|| format!("failpoint spec `{spec}`: expected `err[@N][*C]` or `off`"))?;
    let mut from = 1u64;
    let mut count = None;
    let mut rest = rest;
    if let Some(r) = rest.strip_prefix('@') {
        let (n, r2) = split_number(r, spec)?;
        from = n.max(1);
        rest = r2;
    }
    if let Some(r) = rest.strip_prefix('*') {
        let (c, r2) = split_number(r, spec)?;
        count = Some(c);
        rest = r2;
    }
    if !rest.is_empty() {
        return Err(format!("failpoint spec `{spec}`: trailing `{rest}`"));
    }
    Ok(Some(Point { hits: 0, from, count }))
}

fn split_number<'a>(s: &'a str, spec: &str) -> Result<(u64, &'a str), String> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, rest) = s.split_at(end);
    let n = digits.parse().map_err(|_| format!("failpoint spec `{spec}`: bad number"))?;
    Ok((n, rest))
}

/// Arms `site` with `spec` (`err[@N][*C]`, or `off` to disarm), resetting
/// its hit counter. Returns a description of the problem if the spec does
/// not parse.
pub fn set(site: &str, spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec.trim())?;
    let mut reg = registry().lock().expect("failpoint registry lock");
    match parsed {
        Some(p) => {
            reg.insert(site.to_string(), p);
        }
        None => {
            reg.remove(site);
        }
    }
    ACTIVE.store(!reg.is_empty(), Ordering::SeqCst);
    Ok(())
}

/// Arms every `site=spec` pair in a comma-separated list (the
/// [`FAILPOINT_ENV`] grammar).
pub fn configure(list: &str) -> Result<(), String> {
    let parsed = parse_list(list)?;
    let mut reg = registry().lock().expect("failpoint registry lock");
    for (site, p) in parsed {
        reg.insert(site, p);
    }
    ACTIVE.store(!reg.is_empty(), Ordering::SeqCst);
    Ok(())
}

/// Disarms `site`.
pub fn clear(site: &str) {
    let mut reg = registry().lock().expect("failpoint registry lock");
    reg.remove(site);
    ACTIVE.store(!reg.is_empty(), Ordering::SeqCst);
}

/// Disarms every site. Tests that arm failpoints must call this on every
/// exit path so later tests in the same process start clean.
pub fn clear_all() {
    registry().lock().expect("failpoint registry lock").clear();
    ACTIVE.store(false, Ordering::SeqCst);
}

/// How many times `site` has been evaluated since it was armed (0 when
/// not armed).
pub fn hits(site: &str) -> u64 {
    registry().lock().expect("failpoint registry lock").get(site).map_or(0, |p| p.hits)
}

/// Evaluates the failpoint at `site`: returns `true` when the armed spec
/// says this hit must fail. The caller maps `true` to whatever error its
/// layer speaks (see [`io_error`] for the `std::io` case). A single
/// relaxed atomic load when nothing is armed.
pub fn triggered(site: &str) -> bool {
    // Force env parsing on first use (the OnceLock init) so NEATS_FAILPOINT
    // works even when the very first call is the one it should trip; after
    // that, `registry()` is one atomic load.
    let reg = registry();
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let mut reg = reg.lock().expect("failpoint registry lock");
    let Some(p) = reg.get_mut(site) else {
        return false;
    };
    p.hits += 1;
    let n = p.hits;
    n >= p.from && p.count.is_none_or(|c| n < p.from + c)
}

/// The conventional `std::io::Error` for an injected fault at `site`
/// (message contains "injected failpoint", which the chaos suites grep
/// for).
pub fn io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected failpoint: {site}"))
}

/// An in-memory file with write/sync recording and injectable faults.
#[derive(Clone, Debug)]
pub struct FailpointFile {
    data: Vec<u8>,
    synced_len: usize,
    /// Remaining write budget; once exhausted, writes are (partially)
    /// dropped and the file is `killed`.
    budget: Option<usize>,
    drop_syncs: bool,
    killed: bool,
}

impl Default for FailpointFile {
    fn default() -> Self {
        Self::new()
    }
}

impl FailpointFile {
    /// A file with no fault injected.
    pub fn new() -> Self {
        Self { data: Vec::new(), synced_len: 0, budget: None, drop_syncs: false, killed: false }
    }

    /// A file that accepts exactly `budget` more bytes; the write that
    /// crosses the budget is applied partially and the file dies.
    pub fn kill_after(budget: usize) -> Self {
        Self { budget: Some(budget), ..Self::new() }
    }

    /// Makes every subsequent sync a silent no-op (a misbehaving disk, or a
    /// writer configured with `FsyncPolicy::Never`).
    pub fn dropping_syncs(mut self) -> Self {
        self.drop_syncs = true;
        self
    }

    /// Appends bytes, honouring the kill budget. Returns `false` once the
    /// file has died (the write was dropped or only partially applied).
    pub fn write(&mut self, bytes: &[u8]) -> bool {
        if self.killed {
            return false;
        }
        match self.budget {
            Some(b) if b < bytes.len() => {
                self.data.extend_from_slice(&bytes[..b]);
                self.budget = Some(0);
                self.killed = true;
                false
            }
            Some(b) => {
                self.data.extend_from_slice(bytes);
                self.budget = Some(b - bytes.len());
                true
            }
            None => {
                self.data.extend_from_slice(bytes);
                true
            }
        }
    }

    /// A sync barrier: everything written so far becomes durable — unless
    /// syncs are being dropped or the file has died. Returns whether the
    /// barrier took effect.
    pub fn sync(&mut self) -> bool {
        if self.killed || self.drop_syncs {
            return false;
        }
        self.synced_len = self.data.len();
        true
    }

    /// Everything written so far (the most optimistic crash image).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bytes guaranteed durable.
    pub fn synced_len(&self) -> usize {
        self.synced_len
    }

    /// Whether the kill budget has been exhausted.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Every crash image consistent with the model: each prefix cut from
    /// `synced_len` (nothing past the barrier survived) to the full length
    /// (everything survived).
    pub fn crash_images(&self) -> impl Iterator<Item = &[u8]> {
        (self.synced_len..=self.data.len()).map(move |cut| &self.data[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests serialize on one lock
    /// and clear on every exit path.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn budget_kills_mid_write() {
        let mut f = FailpointFile::kill_after(5);
        assert!(f.write(b"abc"));
        assert!(f.sync());
        assert!(!f.write(b"defg")); // only "de" lands
        assert_eq!(f.data(), b"abcde");
        assert!(f.is_killed());
        assert!(!f.sync(), "a dead file cannot sync");
        assert_eq!(f.synced_len(), 3);
        assert!(!f.write(b"x"), "writes after death are dropped");
        assert_eq!(f.data(), b"abcde");
        let images: Vec<&[u8]> = f.crash_images().collect();
        assert_eq!(images, vec![&b"abc"[..], b"abcd", b"abcde"]);
    }

    #[test]
    fn dropped_syncs_leave_nothing_durable() {
        let mut f = FailpointFile::new().dropping_syncs();
        f.write(b"hello");
        assert!(!f.sync());
        assert_eq!(f.synced_len(), 0);
        assert_eq!(f.crash_images().count(), 6); // cuts 0..=5
    }

    #[test]
    fn registry_spec_grammar() {
        let _g = LOCK.lock().unwrap();
        clear_all();

        // err: every hit fails.
        set("t.always", "err").unwrap();
        assert!(triggered("t.always") && triggered("t.always"));
        assert_eq!(hits("t.always"), 2);

        // err@3: hits 1 and 2 pass, 3 onwards fail.
        set("t.third", "err@3").unwrap();
        assert!(!triggered("t.third"));
        assert!(!triggered("t.third"));
        assert!(triggered("t.third"));
        assert!(triggered("t.third"));

        // err*2: exactly the first two hits fail.
        set("t.twice", "err*2").unwrap();
        assert!(triggered("t.twice"));
        assert!(triggered("t.twice"));
        assert!(!triggered("t.twice"));

        // err@2*1: exactly the second hit fails.
        set("t.window", "err@2*1").unwrap();
        assert!(!triggered("t.window"));
        assert!(triggered("t.window"));
        assert!(!triggered("t.window"));

        // off disarms; unknown sites never fire.
        set("t.always", "off").unwrap();
        assert!(!triggered("t.always"));
        assert!(!triggered("t.unknown"));

        // Re-arming resets the hit counter.
        set("t.twice", "err*1").unwrap();
        assert!(triggered("t.twice"));
        assert!(!triggered("t.twice"));

        // Bad specs are rejected.
        assert!(set("t.bad", "explode").is_err());
        assert!(set("t.bad", "err@x").is_err());
        assert!(set("t.bad", "err@1!").is_err());
        assert!(parse_list("a=err,b").is_err());

        clear_all();
        assert!(!triggered("t.window"));
        assert_eq!(hits("t.window"), 0);
    }

    #[test]
    fn configure_arms_a_list() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        configure("l.a=err@2, l.b=err*1, l.off=off").unwrap();
        assert!(!triggered("l.a"));
        assert!(triggered("l.a"));
        assert!(triggered("l.b"));
        assert!(!triggered("l.b"));
        assert!(!triggered("l.off"));
        clear_all();
    }

    #[test]
    fn io_error_mentions_the_site() {
        let e = io_error("wal.append");
        let msg = e.to_string();
        assert!(msg.contains("injected failpoint") && msg.contains("wal.append"), "{msg}");
    }
}
