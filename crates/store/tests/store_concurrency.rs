//! Concurrency stress test: N scoped reader threads hammer one `Store` with
//! a deterministic pseudo-random mix of point / range / time / aggregate
//! queries, every answer checked against a precomputed oracle. The cache
//! capacity is kept small so eviction churns constantly under contention.

use neats_core::NeaTS;
use neats_store::{Store, StoreConfig, StoreMode, StoreOptions, StoreWriter};
use std::collections::HashMap;
use timeseries::TimeSeries;

/// One series' oracle: stamps, the values the store must serve, and a
/// stamp → index map for `at_time` probes.
struct Oracle {
    stamps: Vec<u64>,
    values: Vec<i64>,
    by_stamp: HashMap<u64, usize>,
}

/// Builds a three-series pack (two lossless, one lossy) plus the oracles.
/// Lossy oracle values come from per-segment standalone archives — the
/// differential suite's ground truth — so this test is pure concurrency.
fn build() -> (Vec<u8>, Vec<(String, Oracle)>) {
    const N: usize = 4000;
    const SEG: usize = 256;
    let mk = |seed: u64, f: fn(i64, i64) -> i64| -> (Vec<u64>, Vec<i64>) {
        let mut t = 1_700_000_000u64;
        let mut acc = 0i64;
        let mut stamps = Vec::with_capacity(N);
        let mut values = Vec::with_capacity(N);
        let mut x = seed;
        for k in 0..N as i64 {
            x = x
                .wrapping_mul(0xD129_0247_3F89_4E1D)
                .wrapping_add(0x9E37_79B9);
            t += 1 + (x >> 58);
            acc += ((x >> 33) as i64 % 21) - 10;
            stamps.push(t);
            values.push(f(k, acc));
        }
        (stamps, values)
    };
    let (s1, v1) = mk(1, |k, acc| acc + k * k / 700);
    let (s2, v2) = mk(2, |k, acc| 3 * acc - k / 3);
    let (s3, v3) = mk(3, |k, acc| acc + (k % 97) * 5);

    let lossless_cfg = StoreConfig {
        segment_points: SEG,
        ..StoreConfig::default()
    };
    let mut w = StoreWriter::new(lossless_cfg);
    w.ingest("walk", &s1, &v1).unwrap();
    w.ingest("trend", &s2, &v2).unwrap();
    let pack = w.finish().unwrap();
    let lossy_cfg = StoreConfig {
        segment_points: SEG,
        mode: StoreMode::Lossy { eps: 16 },
        ..StoreConfig::default()
    };
    let mut w = StoreWriter::append_to(&pack, lossy_cfg).unwrap();
    w.ingest("approx", &s3, &v3).unwrap();
    let pack = w.finish().unwrap();

    // Lossy oracle: reconstruct per standalone segment archive.
    let builder = NeaTS::builder().threads(1);
    let mut v3_served = Vec::with_capacity(N);
    for start in (0..N).step_by(SEG) {
        let end = (start + SEG).min(N);
        let l = builder.build_lossy(&TimeSeries::from_values(v3[start..end].to_vec()), 16);
        v3_served.extend(l.reconstruct());
    }

    let oracle = |stamps: Vec<u64>, values: Vec<i64>| {
        let by_stamp = stamps.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        Oracle {
            stamps,
            values,
            by_stamp,
        }
    };
    let oracles = vec![
        ("walk".to_string(), oracle(s1, v1)),
        ("trend".to_string(), oracle(s2, v2)),
        ("approx".to_string(), oracle(s3, v3_served)),
    ];
    (pack, oracles)
}

/// Runs `ops` mixed queries on `store` from one thread, all checked.
fn hammer(store: &Store, oracles: &[(String, Oracle)], thread_id: u64, ops: usize) {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (thread_id.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut rng = move || {
        x = x
            .wrapping_mul(0xD129_0247_3F89_4E1D)
            .wrapping_add(0x9E37_79B9);
        x
    };
    let mut range_buf = Vec::new();
    let mut time_buf = Vec::new();
    for op in 0..ops {
        let (name, o) = &oracles[(rng() % oracles.len() as u64) as usize];
        let n = o.values.len();
        let a = (rng() % n as u64) as usize;
        let len = (rng() % 600).min((n - a) as u64) as usize;
        match rng() % 6 {
            0 => {
                assert_eq!(
                    store.get(name, a).unwrap(),
                    o.values[a],
                    "get({name}, {a}) op {op}"
                );
            }
            1 => {
                range_buf.clear();
                store.range(name, a..a + len, &mut range_buf).unwrap();
                assert_eq!(
                    range_buf,
                    &o.values[a..a + len],
                    "range({name}, {a}..+{len})"
                );
            }
            2 => {
                let want: i128 = o.values[a..a + len].iter().map(|&v| v as i128).sum();
                assert_eq!(store.sum(name, a..a + len).unwrap(), want, "sum({name})");
            }
            3 => {
                let want = o.values[a..a + len]
                    .iter()
                    .fold(None, |acc: Option<(i64, i64)>, &v| {
                        Some(acc.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))))
                    });
                assert_eq!(
                    store.min_max(name, a..a + len).unwrap(),
                    want,
                    "min_max({name})"
                );
            }
            4 => {
                // Probe a stored stamp, then a neighbour (usually a gap).
                let t = o.stamps[a];
                assert_eq!(
                    store.at_time(name, t).unwrap(),
                    Some(o.values[a]),
                    "at_time hit"
                );
                let probe = t + 1 + rng() % 3;
                let want = o.by_stamp.get(&probe).map(|&i| o.values[i]);
                assert_eq!(store.at_time(name, probe).unwrap(), want, "at_time probe");
            }
            _ => {
                let b = (a + len).min(n - 1);
                let (t_lo, t_hi) = (o.stamps[a], o.stamps[b]);
                time_buf.clear();
                store
                    .range_by_time(name, t_lo, t_hi, &mut time_buf)
                    .unwrap();
                let want: Vec<(u64, i64)> = o
                    .stamps
                    .iter()
                    .zip(&o.values)
                    .skip(a)
                    .take(b - a + 1)
                    .map(|(&t, &v)| (t, v))
                    .collect();
                assert_eq!(time_buf, want, "range_by_time({name})");
            }
        }
    }
}

#[test]
fn concurrent_readers_agree_with_oracle() {
    let (pack, oracles) = build();
    // Capacity far below the segment count (3 series × ~16 segments), so
    // the LRU evicts constantly while threads race on it.
    let store = Store::open_with(
        pack,
        StoreOptions {
            cache_capacity: 8,
            ..StoreOptions::default()
        },
    )
    .unwrap();

    for threads in [2usize, 4, 8] {
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let store = &store;
                let oracles = &oracles;
                scope.spawn(move || hammer(store, oracles, tid as u64 + 1, 400));
            }
        });
    }

    let stats = store.cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "queries must have touched the cache"
    );
    assert!(stats.misses > 0, "eviction churn expected at capacity 8");
    assert!(
        stats.entries <= 8,
        "cache must respect its capacity, got {}",
        stats.entries
    );
}

#[test]
fn single_thread_matches_multi_thread_cache_or_not() {
    // The same workload with caching disabled must give identical answers —
    // the cache is purely an optimisation.
    let (pack, oracles) = build();
    let cached = Store::open(pack.clone()).unwrap();
    let cold = Store::open_with(
        pack,
        StoreOptions {
            cache_capacity: 0,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    hammer(&cached, &oracles, 42, 250);
    hammer(&cold, &oracles, 42, 250);
    assert_eq!(cold.cache_stats().entries, 0);
    assert!(cached.cache_stats().hits > 0);
}
