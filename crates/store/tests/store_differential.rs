//! Differential tests for the pack store: every store answer must equal the
//! answer computed from **standalone archives** — for each segment, an
//! archive built independently from the same slice with the same
//! configuration (for lossless series, additionally the raw ingested
//! values) — across segment sizes × lossless/lossy × 1/2/4 writer threads.
//!
//! Also here: the catalog-region corruption guarantee. Every single-byte
//! corruption of the catalog region (catalog bytes + footer) is rejected
//! deterministically at `Store::open`; corruption of segment blobs is
//! rejected at first query of the affected segment.

use neats_core::{ArchiveView, NeaTS};
use neats_store::{Store, StoreConfig, StoreMode, StoreOptions, StoreWriter};
use proptest::prelude::*;
use timeseries::TimeSeries;

/// Writer fan-out thread counts the acceptance criteria call out.
const THREADS: [usize; 3] = [1, 2, 4];
/// Segment-size pool: tiny (many boundaries), medium, larger than most
/// generated series (single segment).
const SEGMENT_POINTS: [usize; 3] = [16, 64, 512];

/// One generated series: irregular strictly-increasing stamps + a walk.
#[derive(Clone, Debug)]
struct GenSeries {
    name: String,
    stamps: Vec<u64>,
    values: Vec<i64>,
}

fn gen_series(idx: usize, gaps: &[u64], deltas: &[i64]) -> GenSeries {
    let n = gaps.len().min(deltas.len());
    let mut t = 1_600_000_000u64 + idx as u64;
    let mut v = (idx as i64) * 13;
    let mut stamps = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        t += 1 + gaps[i];
        v += deltas[i];
        stamps.push(t);
        values.push(v);
    }
    GenSeries {
        name: format!("series-{idx}"),
        stamps,
        values,
    }
}

/// Standalone per-segment archives: the single-archive answers the store
/// must reproduce. Returns the opened bytes per segment plus the segment
/// boundaries `(first_index, count)`.
struct Standalone {
    segment_bytes: Vec<Vec<u8>>,
    bounds: Vec<(usize, usize)>,
}

impl Standalone {
    fn build(s: &GenSeries, segment_points: usize, mode: StoreMode) -> Self {
        let builder = NeaTS::builder().threads(1);
        let mut segment_bytes = Vec::new();
        let mut bounds = Vec::new();
        for start in (0..s.values.len()).step_by(segment_points) {
            let end = (start + segment_points).min(s.values.len());
            let ts = TimeSeries::from_values(s.values[start..end].to_vec());
            let bytes = match mode {
                StoreMode::Lossless => builder.build(&ts).to_bytes(),
                StoreMode::Lossy { eps } => builder.build_lossy(&ts, eps).to_bytes(),
            };
            segment_bytes.push(bytes);
            bounds.push((start, end - start));
        }
        Self {
            segment_bytes,
            bounds,
        }
    }

    fn views(&self) -> Vec<ArchiveView<'_>> {
        self.segment_bytes
            .iter()
            .map(|b| ArchiveView::open(b).expect("standalone"))
            .collect()
    }

    /// The full series as the standalone archives answer it.
    fn materialize(&self) -> Vec<i64> {
        self.views().iter().flat_map(|v| v.materialize()).collect()
    }
}

/// Checks the complete store query surface for one series against its
/// standalone archives.
fn assert_series_equivalent(
    store: &Store,
    s: &GenSeries,
    standalone: &Standalone,
    ranges: &[(usize, usize)],
) -> Result<(), TestCaseError> {
    let name = s.name.as_str();
    let entry = store.series(name).expect("series in catalog");
    let n = s.values.len();
    prop_assert_eq!(entry.len(), n);
    prop_assert_eq!(
        entry
            .segments()
            .iter()
            .map(|m| (m.first_index(), m.count()))
            .collect::<Vec<_>>(),
        standalone.bounds.clone(),
        "segment boundaries diverge"
    );
    let views = standalone.views();
    let oracle = standalone.materialize();

    // Point queries: every index, plus both error edges.
    for k in 0..n {
        prop_assert_eq!(store.get(name, k).unwrap(), oracle[k], "get({})", k);
        prop_assert_eq!(
            store.timestamp(name, k).unwrap(),
            s.stamps[k],
            "timestamp({})",
            k
        );
    }
    prop_assert!(store.get(name, n).is_err());

    // Time queries: every stored stamp hits, neighbours in gaps miss.
    for k in (0..n).step_by(3) {
        prop_assert_eq!(store.at_time(name, s.stamps[k]).unwrap(), Some(oracle[k]));
        let gap = s.stamps[k] + 1;
        if k + 1 >= n || s.stamps[k + 1] != gap {
            prop_assert_eq!(store.at_time(name, gap).unwrap(), None);
        }
    }
    if n > 0 {
        prop_assert_eq!(store.at_time(name, s.stamps[0] - 1).unwrap(), None);
        prop_assert_eq!(store.at_time(name, s.stamps[n - 1] + 1).unwrap(), None);
    }

    // Index ranges + aggregate pushdown, stitched vs standalone stitching.
    for &(a, b) in ranges {
        let mut got = Vec::new();
        store.range(name, a..b, &mut got).unwrap();
        prop_assert_eq!(&got, &oracle[a..b], "range({}..{})", a, b);

        let want_sum: i128 = oracle[a..b].iter().map(|&v| v as i128).sum();
        prop_assert_eq!(
            store.sum(name, a..b).unwrap(),
            want_sum,
            "sum({}..{})",
            a,
            b
        );

        let want_mm = oracle[a..b]
            .iter()
            .fold(None, |acc: Option<(i64, i64)>, &v| match acc {
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
                None => Some((v, v)),
            });
        prop_assert_eq!(
            store.min_max(name, a..b).unwrap(),
            want_mm,
            "min_max({}..{})",
            a,
            b
        );

        // The stitched estimate must equal the per-segment standalone
        // estimates added in segment order — bit-identical f64 folding.
        let mut value = 0.0f64;
        let mut max_error = 0.0f64;
        for (view, &(first, count)) in views.iter().zip(&standalone.bounds) {
            let lo = a.max(first);
            let hi = b.min(first + count);
            if lo < hi {
                let e = view.sum_range_estimate(lo - first, hi - lo);
                value += e.value;
                max_error += e.max_error;
            }
        }
        let est = store.sum_estimate(name, a..b).unwrap();
        prop_assert_eq!(est.value, value, "sum_estimate value ({}..{})", a, b);
        prop_assert_eq!(
            est.max_error,
            max_error,
            "sum_estimate bound ({}..{})",
            a,
            b
        );
    }

    // Time-interval queries against the filter oracle.
    if n > 0 {
        for &(a, b) in ranges.iter().take(3) {
            let (t_lo, t_hi) = if a < b {
                (s.stamps[a], s.stamps[b - 1])
            } else {
                (s.stamps[a.min(n - 1)], s.stamps[a.min(n - 1)])
            };
            let mut got = Vec::new();
            store.range_by_time(name, t_lo, t_hi, &mut got).unwrap();
            let want: Vec<(u64, i64)> = s
                .stamps
                .iter()
                .zip(&oracle)
                .filter(|(&t, _)| t >= t_lo && t <= t_hi)
                .map(|(&t, &v)| (t, v))
                .collect();
            prop_assert_eq!(got, want, "range_by_time [{}, {}]", t_lo, t_hi);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Store answers == standalone-archive answers, lossless, across
    /// segment sizes × thread counts × 1–3 series per pack.
    #[test]
    fn lossless_store_equals_standalone(
        gaps in prop::collection::vec(0u64..300, 30..280),
        deltas in prop::collection::vec(-50i64..=50, 30..280),
        series_count in 1usize..=3,
        seg_idx in 0usize..SEGMENT_POINTS.len(),
        thread_idx in 0usize..THREADS.len(),
        range_seeds in prop::collection::vec((0usize..10_000, 0usize..10_000), 2..6),
    ) {
        run_case(
            &gaps, &deltas, series_count, SEGMENT_POINTS[seg_idx],
            THREADS[thread_idx], StoreMode::Lossless, &range_seeds,
        )?;
    }

    /// Same, lossy: store segments and standalone segments approximate the
    /// same slices under the same ε, so their answers must be identical.
    #[test]
    fn lossy_store_equals_standalone(
        gaps in prop::collection::vec(0u64..300, 30..220),
        deltas in prop::collection::vec(-50i64..=50, 30..220),
        series_count in 1usize..=2,
        eps in 0u64..90,
        seg_idx in 0usize..SEGMENT_POINTS.len(),
        thread_idx in 0usize..THREADS.len(),
        range_seeds in prop::collection::vec((0usize..10_000, 0usize..10_000), 2..5),
    ) {
        run_case(
            &gaps, &deltas, series_count, SEGMENT_POINTS[seg_idx],
            THREADS[thread_idx], StoreMode::Lossy { eps }, &range_seeds,
        )?;
    }
}

fn run_case(
    gaps: &[u64],
    deltas: &[i64],
    series_count: usize,
    segment_points: usize,
    threads: usize,
    mode: StoreMode,
    range_seeds: &[(usize, usize)],
) -> Result<(), TestCaseError> {
    let all: Vec<GenSeries> = (0..series_count)
        .map(|i| {
            // Derive distinct series from rotations of the generated pools.
            let rot = (i * 7) % gaps.len().max(1);
            let g: Vec<u64> = gaps[rot..].iter().chain(&gaps[..rot]).copied().collect();
            let d: Vec<i64> = deltas[rot..]
                .iter()
                .chain(&deltas[..rot])
                .copied()
                .collect();
            gen_series(i, &g, &d)
        })
        .collect();

    let cfg = StoreConfig {
        segment_points,
        builder: NeaTS::builder(),
        mode,
        threads,
    };
    let mut w = StoreWriter::new(cfg);
    for s in &all {
        // Split each series into a few ingestion batches to exercise the
        // batch-boundary path as well as the segmentation path.
        let n = s.values.len();
        for (lo, hi) in [(0, n / 3), (n / 3, n / 3 + 1), (n / 3 + 1, n)] {
            w.ingest(&s.name, &s.stamps[lo..hi], &s.values[lo..hi])
                .unwrap();
        }
    }
    let pack = w.finish().unwrap();

    // A freshly written pack has no dead bytes, and compaction of it is the
    // identity — the byte-level fixed-point invariant.
    let store = Store::open_with(
        pack.clone(),
        StoreOptions {
            cache_capacity: 8,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    prop_assert_eq!(store.dead_bytes(), 0);
    prop_assert_eq!(store.compact(), pack);

    for s in &all {
        let standalone = Standalone::build(s, segment_points, mode);
        let n = s.values.len();
        let ranges: Vec<(usize, usize)> = range_seeds
            .iter()
            .map(|&(a, b)| {
                let lo = a % (n + 1);
                (lo, lo + b % (n - lo + 1))
            })
            .collect();
        assert_series_equivalent(&store, s, &standalone, &ranges)?;
    }
    Ok(())
}

/// Per-byte corruption of the catalog region (catalog bytes + footer) is
/// rejected deterministically at open — exhaustively, two bit positions per
/// byte.
#[test]
fn catalog_region_corruption_is_rejected_per_byte() {
    let pack = corruption_pack();
    let catalog_offset =
        u64::from_le_bytes(pack[pack.len() - 32..pack.len() - 24].try_into().unwrap()) as usize;
    assert!(catalog_offset < pack.len());
    for pos in catalog_offset..pack.len() {
        for bit in [0u8, 7] {
            let mut bad = pack.clone();
            bad[pos] ^= 1 << bit;
            assert!(
                Store::open(bad).is_err(),
                "catalog-region flip at byte {pos} bit {bit} was accepted"
            );
        }
    }
    // The header magic/version are exact-match checks: also deterministic.
    for pos in 0..16 {
        let mut bad = pack.clone();
        bad[pos] ^= 1;
        assert!(
            Store::open(bad).is_err(),
            "header flip at byte {pos} was accepted"
        );
    }
}

/// Corruption inside the data region is caught at first query of the
/// affected segment: the value frame is self-checksummed, the timestamp
/// blob's CRC is recorded in the catalog.
#[test]
fn data_region_corruption_is_rejected_at_query_time() {
    let pack = corruption_pack();
    let catalog_offset =
        u64::from_le_bytes(pack[pack.len() - 32..pack.len() - 24].try_into().unwrap()) as usize;
    for pos in (16..catalog_offset).step_by(11) {
        let mut bad = pack.clone();
        bad[pos] ^= 1;
        // Catalog is intact, so the store still opens…
        let store = Store::open(bad).expect("catalog is intact");
        // …but the corrupted byte lives in exactly one segment blob, and
        // every query touching it must fail. Sweep all points of all series:
        // at least one must error, and no query may return a wrong value.
        let mut rejected = false;
        for name in ["alpha", "beta"] {
            let entry = store.series(name).unwrap();
            for k in 0..entry.len() {
                match store.get(name, k) {
                    Err(_) => {
                        rejected = true;
                        break;
                    }
                    Ok(_) => {}
                }
            }
        }
        assert!(
            rejected,
            "no query rejected the data-region flip at byte {pos}"
        );
    }
}

/// A small two-series pack used by the corruption tests.
fn corruption_pack() -> Vec<u8> {
    let mut w = StoreWriter::new(StoreConfig {
        segment_points: 48,
        ..StoreConfig::default()
    });
    let stamps: Vec<u64> = (0..160u64).map(|i| 10 + i * 5).collect();
    let a: Vec<i64> = (0..160).map(|k: i64| k * k / 9 - 2 * k).collect();
    let b: Vec<i64> = (0..160).map(|k: i64| 77 - k % 23).collect();
    w.ingest("alpha", &stamps, &a).unwrap();
    w.ingest("beta", &stamps, &b).unwrap();
    w.finish().unwrap()
}
