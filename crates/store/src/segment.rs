//! An opened segment: the zero-copy value view and timestamp index,
//! borrowed from the pack's shared byte buffer.
//!
//! This is the one place the crate uses `unsafe`. A [`SegmentView`] must
//! hold both the `Arc<[u8]>` that owns the pack bytes *and* views that
//! borrow from those bytes — a self-referential pair Rust's lifetimes can't
//! express directly. The views are transmuted to `'static` internally and
//! **never exposed at that lifetime**: every accessor reborrows them at the
//! lifetime of `&self`, so callers cannot outlive the buffer.

use crate::format::SegmentMeta;
use crate::StoreError;
use neats_core::ArchiveView;
use std::sync::Arc;
use succinct::{crc64, EliasFanoView, WireReader};

/// A validated, opened segment: value archive view + timestamp index, both
/// borrowing the pack buffer kept alive by `_pack`.
pub(crate) struct SegmentView {
    /// Owns the bytes the two views below borrow. Must stay alive as long
    /// as this struct; never mutated (`Arc<[u8]>` contents are immutable).
    _pack: Arc<[u8]>,
    /// SAFETY invariant: borrows from `_pack`'s heap allocation, which is
    /// stable (moving the `Arc` does not move the bytes) and outlives this
    /// struct. Only ever reborrowed at `&self`'s lifetime.
    view: ArchiveView<'static>,
    /// SAFETY invariant: same as `view`.
    ts: EliasFanoView<'static>,
    /// First timestamp; stamps are stored rebased so the Elias-Fano
    /// universe is the segment's time *span*.
    ts_base: u64,
}

impl SegmentView {
    /// Opens and fully validates one segment of `pack`: the value frame's
    /// own checksum and structure (via [`ArchiveView::open`]), the timestamp
    /// blob's catalog-recorded CRC, and the agreement of both with the
    /// catalog entry (point count, time span, strict stamp monotonicity).
    pub(crate) fn open(pack: &Arc<[u8]>, meta: &SegmentMeta) -> Result<Self, StoreError> {
        // Blob bounds were validated against the data region at catalog
        // parse time.
        let frame = &pack[meta.data_offset..meta.data_offset + meta.data_len];
        let view = ArchiveView::open(frame)?;
        if view.len() != meta.count {
            return Err(StoreError::Corrupt("segment frame point count"));
        }

        let blob = &pack[meta.ts_offset..meta.ts_offset + meta.ts_len];
        if crc64(blob) != meta.ts_crc {
            return Err(StoreError::Corrupt("timestamp blob checksum mismatch"));
        }
        let mut r = WireReader::new(blob);
        let ts_base = r.u64()?;
        let ts = EliasFanoView::read(&mut r)?;
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt("timestamp blob trailing bytes"));
        }
        ts.validate()?;
        if ts.len() != meta.count {
            return Err(StoreError::Corrupt("timestamp count mismatch"));
        }
        if ts_base != meta.t_min || ts.get(0) != 0 {
            return Err(StoreError::Corrupt("timestamp base mismatch"));
        }
        let mut prev = 0u64;
        for (i, v) in ts.iter().enumerate() {
            if i > 0 && v <= prev {
                return Err(StoreError::Corrupt("timestamps not strictly increasing"));
            }
            prev = v;
        }
        if ts_base.checked_add(prev) != Some(meta.t_max) {
            return Err(StoreError::Corrupt("timestamp span mismatch"));
        }

        // SAFETY: both views borrow from `pack`'s heap allocation. The
        // `Arc` clone stored alongside them keeps that allocation alive for
        // the lifetime of the returned struct, the bytes are never mutated,
        // and the accessors below reborrow the views at `&self`'s lifetime,
        // so no `'static` reference ever escapes.
        let view: ArchiveView<'static> = unsafe { std::mem::transmute(view) };
        let ts: EliasFanoView<'static> = unsafe { std::mem::transmute(ts) };
        Ok(Self { _pack: Arc::clone(pack), view, ts, ts_base })
    }

    /// The segment's value archive, reborrowed at `&self`'s lifetime
    /// (`ArchiveView` is covariant in its lifetime parameter).
    pub(crate) fn archive<'s>(&'s self) -> &'s ArchiveView<'s> {
        &self.view
    }

    /// The timestamp of the segment-local point `i`.
    pub(crate) fn timestamp(&self, i: usize) -> u64 {
        self.ts_base + self.ts.get(i)
    }

    /// Number of stamps ≤ `t` in this segment (0 when `t` precedes it).
    pub(crate) fn stamps_leq(&self, t: u64) -> usize {
        if t < self.ts_base {
            return 0;
        }
        self.ts.rank_leq(t - self.ts_base)
    }

    /// Segment-local index of the first point with timestamp ≥ `t`.
    pub(crate) fn lower_bound(&self, t: u64) -> usize {
        if t <= self.ts_base {
            return 0;
        }
        self.ts.rank_leq(t - self.ts_base - 1)
    }

    /// The segment-local index holding exactly timestamp `t`, if any.
    pub(crate) fn index_of_time(&self, t: u64) -> Option<usize> {
        let r = self.stamps_leq(t);
        if r == 0 || self.timestamp(r - 1) != t {
            return None;
        }
        Some(r - 1)
    }
}
