//! # neats-store — a multi-series, segmented packfile store
//!
//! The compressor crates serve one archive at a time; a production system
//! holds *many* series, each too long for a single archive to be the right
//! unit of compression, caching, or retention. This crate adds the container
//! layer: an append-only **packfile** holding a catalog of named series,
//! each split into time-partitioned **segments**, where every segment's
//! value column is a self-contained checksummed NeaTS container frame (the
//! `neats_core::ArchiveView` v2 frame) and its timestamp column is an
//! Elias-Fano blob.
//!
//! * [`StoreWriter`] ingests `(series, timestamps, values)` batches, splits
//!   them into bounded-size segments, and compresses all segments **in
//!   parallel** (via `neats_core::parallel`) at [`StoreWriter::finish`].
//! * [`Store`] opens a pack once into an `Arc<[u8]>` and serves every query
//!   zero-copy through borrowed [`neats_core::ArchiveView`]s, with a sharded
//!   LRU cache of opened segment views. `Store` is `Send + Sync`: any number
//!   of reader threads may query it concurrently.
//! * Queries stitch across segment boundaries: [`Store::get`],
//!   [`Store::at_time`], [`Store::range`], [`Store::range_by_time`], and the
//!   aggregate pushdowns [`Store::sum`], [`Store::sum_estimate`],
//!   [`Store::min_max`].
//! * [`Store::compact`] rewrites a pack, dropping dead bytes left behind by
//!   [`StoreWriter::delete_series`] / re-ingestion and by superseded
//!   catalogs.
//!
//! ## Pack layout (version 1)
//!
//! ```text
//! u64  magic            "NeaTSPAK"
//! u64  version          1
//! …    data region      segment blobs, back to back:
//!                         value frames   (self-checksummed v2 container frames)
//!                         timestamp blobs (u64 base + Elias-Fano of stamp − base)
//! …    catalog          series_count, then per series:
//!                         name, mode (lossless / lossy ε), segment table
//!                         (per segment: value-frame offset/len, timestamp
//!                          blob offset/len/CRC, first_index, count, t_min, t_max)
//! u64  catalog_offset   ┐
//! u64  catalog_len      │ footer: locates and checksums the catalog
//! u64  catalog_crc      │ (CRC-64/XZ over the catalog bytes)
//! u64  end magic        ┘ "NeaTSEND"
//! ```
//!
//! Any single-byte corruption of the catalog region (catalog bytes or
//! footer) is rejected deterministically at [`Store::open`]; corruption
//! inside a segment blob is rejected when that segment is first opened (the
//! value frame carries its own CRC-64, the timestamp blob's CRC lives in the
//! catalog).
//!
//! The full byte-level offset tables, the catalog record grammar, how this
//! read path compares to the owned and single-archive view paths, and the
//! `segment.rs` unsafe-lifetime invariants are documented in
//! `ARCHITECTURE.md` at the repository root; the HTTP serving layer over
//! this store is the `neats-serve` crate.
//!
//! ```
//! use neats_store::{Store, StoreConfig, StoreWriter};
//!
//! let mut w = StoreWriter::new(StoreConfig::default());
//! let stamps: Vec<u64> = (0..1000).map(|i| 1_700_000_000 + i * 60).collect();
//! let values: Vec<i64> = (0..1000).map(|k| k * k / 50).collect();
//! w.ingest("cpu", &stamps, &values).unwrap();
//! let pack = w.finish().unwrap();
//!
//! let store = Store::open(pack).unwrap();
//! assert_eq!(store.get("cpu", 123).unwrap(), values[123]);
//! assert_eq!(store.at_time("cpu", stamps[500]).unwrap(), Some(values[500]));
//! ```

#![warn(missing_docs)]

mod cache;
mod format;
mod segment;
mod store;
mod writer;

pub use cache::{CacheSharding, CacheStats};
pub use format::{SegmentMeta, SeriesEntry, StoreMode};
pub use store::{Store, StoreOptions};
pub use writer::{StoreConfig, StoreWriter, DEFAULT_SEGMENT_POINTS};

use succinct::WireError;

/// Errors from building, opening, or querying a pack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The pack (or a segment blob) violates a structural invariant.
    Corrupt(&'static str),
    /// A wire-level decode failure (truncation, checksum mismatch, …).
    Wire(WireError),
    /// The named series is not in the catalog.
    UnknownSeries(String),
    /// An index beyond the queried dimension (point index vs series
    /// length, or segment index vs segment count).
    OutOfRange {
        /// The requested index.
        index: usize,
        /// The length of the indexed dimension.
        len: usize,
    },
    /// An index range that is inverted or beyond the series length.
    BadRange {
        /// Range start (inclusive).
        start: usize,
        /// Range end (exclusive).
        end: usize,
        /// The series length.
        len: usize,
    },
    /// An ingested batch whose timestamps do not strictly increase (within
    /// the batch, or relative to the series' last stored timestamp).
    TimestampOrder {
        /// The series being ingested.
        series: String,
        /// Position of the offending timestamp within the batch.
        index: usize,
    },
    /// Timestamp and value columns of a batch differ in length.
    LengthMismatch {
        /// Length of the timestamp column.
        timestamps: usize,
        /// Length of the value column.
        values: usize,
    },
    /// An ingest into an existing series under a different [`StoreMode`].
    ModeMismatch {
        /// The series whose stored mode differs from the writer's config.
        series: String,
    },
    /// An ingested series name that is empty.
    EmptyName,
    /// An underlying I/O failure (path-based open/write helpers only).
    Io(String),
    /// A segment failed CRC/structural validation on load and is
    /// quarantined: queries touching it fail with this error while every
    /// other segment and series keeps serving. Sticky for the lifetime of
    /// the [`Store`] value (a reopen revalidates).
    Quarantined {
        /// The series whose segment is quarantined.
        series: String,
        /// The segment index within that series.
        segment: usize,
    },
    /// The write path is in read-only *degraded* mode after an I/O fault
    /// (`ENOSPC`, injected failpoint, …): reads keep serving, writes are
    /// rejected with this error until a background retry succeeds.
    Degraded {
        /// Human-readable description of the fault that tripped the mode.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Corrupt(what) => write!(f, "corrupt pack: {what}"),
            StoreError::Wire(e) => write!(f, "corrupt pack: {e}"),
            StoreError::UnknownSeries(name) => write!(f, "unknown series {name:?}"),
            StoreError::OutOfRange { index, len } => {
                write!(f, "index {index} out of range (length {len})")
            }
            StoreError::BadRange { start, end, len } => {
                write!(
                    f,
                    "range {start}..{end} out of bounds (series length {len})"
                )
            }
            StoreError::TimestampOrder { series, index } => {
                write!(
                    f,
                    "series {series:?}: timestamp at batch index {index} does not increase"
                )
            }
            StoreError::LengthMismatch { timestamps, values } => {
                write!(f, "{timestamps} timestamps vs {values} values")
            }
            StoreError::ModeMismatch { series } => {
                write!(f, "series {series:?} was stored under a different mode")
            }
            StoreError::EmptyName => write!(f, "series name must be non-empty"),
            StoreError::Io(msg) => write!(f, "i/o error: {msg}"),
            StoreError::Quarantined { series, segment } => {
                write!(
                    f,
                    "series {series:?} segment {segment} is quarantined (failed validation)"
                )
            }
            StoreError::Degraded { reason } => {
                write!(f, "ingest degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
