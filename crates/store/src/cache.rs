//! A sharded LRU cache of opened segment views.
//!
//! Opening a segment costs a CRC pass plus structural validation over the
//! whole blob; serving a point query from an opened view costs a handful of
//! rank/select probes. A server answering many queries against a working
//! set of segments therefore wants opened views kept around. The cache is
//! sharded to keep lock hold times short under concurrent readers: a key
//! maps to one of up to [`MAX_SHARDS`] independently locked maps, and
//! eviction is least-recently-used per shard (exact LRU via a monotone
//! global tick; the per-shard scan is over at most `capacity / shards`
//! entries).
//!
//! Two [`CacheSharding`] policies decide *which* shard a lookup touches:
//!
//! * [`ByKey`](CacheSharding::ByKey) (default) — Fibonacci-hash the
//!   (series, segment) key. Every open view exists at most once, but
//!   threads chasing the same hot segment contend on its shard's lock.
//! * [`ByThread`](CacheSharding::ByThread) — each *thread* is assigned its
//!   own shard at first touch. A fixed thread pool (the serve reactor's
//!   shard-per-core event loops) then runs completely lock-contention-free:
//!   no two pool threads ever touch the same `Mutex`. The price is that a
//!   segment hot on several threads is opened and cached once per thread —
//!   bounded duplication traded for zero cross-core traffic.

use crate::segment::SegmentView;
use crate::StoreError;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum number of independently locked shards (fewer when the requested
/// capacity is smaller, so tiny caches still respect their bound).
const MAX_SHARDS: usize = 8;

/// Cache key: (series index, segment index) within the catalog.
pub(crate) type SegKey = (u32, u32);

/// How lookups are distributed over the cache's independently locked
/// shards (see the `cache` module docs for the trade-off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheSharding {
    /// Shard by (series, segment) key hash: each view cached at most once,
    /// shared by all threads. The right default for ad-hoc reader pools.
    #[default]
    ByKey,
    /// Shard by calling thread: every thread gets a private shard (threads
    /// beyond the shard count share, round-robin). Lock-contention-free for
    /// a fixed pool of at most 8 (`MAX_SHARDS`) threads; hot segments may
    /// be cached once per thread.
    ByThread,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<SegKey, (u64, Arc<SegmentView>)>,
}

/// Hit/miss counters and current size of a store's segment-view cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-open view.
    pub hits: u64,
    /// Lookups that had to open (validate) the segment.
    pub misses: u64,
    /// Entries evicted to make room (LRU per shard).
    pub evictions: u64,
    /// Views currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

pub(crate) struct SegmentCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; 0 disables caching entirely.
    shard_cap: usize,
    sharding: CacheSharding,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Next thread slot to hand out under [`CacheSharding::ByThread`]. Global
/// (not per cache) so the assignment survives a store being reopened under
/// the same pool; a pool of N threads always spans N consecutive slots and
/// therefore N distinct shards whenever the cache has ≥ N of them.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's slot, assigned on first cache access.
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

impl SegmentCache {
    /// A cache for about `capacity` opened views in total (`capacity == 0`
    /// disables caching: every lookup reopens). The capacity is divided
    /// over the shards, so the bound is per shard: a working set that
    /// hashes unevenly can hold slightly more than `capacity` in total
    /// (at most `capacity + shards − 1`) and thrash a shard before the
    /// whole budget is used — the standard sharded-LRU trade-off for
    /// short lock hold times.
    pub(crate) fn new(capacity: usize, sharding: CacheSharding) -> Self {
        // Tiny caches get one entry per shard and exactly `capacity`
        // shards, so their documented bound stays exact.
        let shards = MAX_SHARDS.min(capacity.max(1));
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(shards)
            },
            sharding,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: SegKey) -> usize {
        match self.sharding {
            CacheSharding::ByKey => {
                // Fibonacci hash of the packed key; series and segment
                // indices are both small and sequential, so multiply-shift
                // spreads them well.
                let packed = ((key.0 as u64) << 32) | key.1 as u64;
                (packed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
            }
            CacheSharding::ByThread => {
                let slot = THREAD_SLOT.with(|s| {
                    let mut slot = s.get();
                    if slot == usize::MAX {
                        slot = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
                        s.set(slot);
                    }
                    slot
                });
                slot % self.shards.len()
            }
        }
    }

    /// Returns the cached view for `key`, or opens one with `open`,
    /// caches, and returns it. `open` runs outside the shard lock, so a
    /// slow validation never blocks readers of other segments in the same
    /// shard; two racing misses on one key may both open, and the later
    /// insert wins — harmless, since views of the same bytes are
    /// interchangeable.
    pub(crate) fn get_or_open(
        &self,
        key: SegKey,
        open: impl FnOnce() -> Result<SegmentView, StoreError>,
    ) -> Result<Arc<SegmentView>, StoreError> {
        if self.shard_cap > 0 {
            let _probe = neats_core::obs::stage(neats_core::obs::Stage::Cache);
            let mut shard = self.shards[self.shard_of(key)].lock().expect("cache lock");
            if let Some((stamp, view)) = shard.entries.get_mut(&key) {
                *stamp = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(view));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let view = {
            // Opening = checksum + structural validation: the "segment
            // decode" stage of a request trace.
            let _decode = neats_core::obs::stage(neats_core::obs::Stage::Decode);
            Arc::new(open()?)
        };
        if self.shard_cap > 0 {
            let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shards[self.shard_of(key)].lock().expect("cache lock");
            if shard.entries.len() >= self.shard_cap && !shard.entries.contains_key(&key) {
                // Evict the least-recently-used entry of this shard.
                if let Some(&lru) = shard
                    .entries
                    .iter()
                    .min_by_key(|(_, (s, _))| *s)
                    .map(|(k, _)| k)
                {
                    shard.entries.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.entries.insert(key, (stamp, Arc::clone(&view)));
        }
        Ok(view)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache lock").entries.len())
                .sum(),
        }
    }
}
