//! The pack wire format: header, catalog, and footer.
//!
//! The catalog is the only region the reader must trust to *locate* data, so
//! it gets its own CRC-64 in the footer; every value frame is additionally
//! self-checksummed (the v2 container frame), and every timestamp blob's
//! CRC is recorded in its catalog entry. Parsing is validating throughout:
//! a crafted catalog that passes its checksum still cannot make any query
//! panic or read out of bounds.

use crate::StoreError;
use std::collections::HashMap;
use succinct::{crc64, WireReader, WireWriter};

/// Pack header magic: the ASCII bytes `NeaTSPAK`, read as a little-endian u64.
pub(crate) const PACK_MAGIC: u64 = u64::from_le_bytes(*b"NeaTSPAK");
/// Footer end magic: the ASCII bytes `NeaTSEND`.
pub(crate) const END_MAGIC: u64 = u64::from_le_bytes(*b"NeaTSEND");
/// Current pack format version.
pub(crate) const PACK_VERSION: u64 = 1;
/// Fixed header length: magic + version.
pub(crate) const HEADER_LEN: usize = 16;
/// Fixed footer length: catalog offset + length + CRC + end magic.
pub(crate) const FOOTER_LEN: usize = 32;

/// How a series' segments were compressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreMode {
    /// Lossless NeaTS archives: queries return the exact ingested values.
    Lossless,
    /// Lossy (NeaTS-L) archives under the given error bound: queries return
    /// ε-bounded approximations.
    Lossy {
        /// The maximum absolute error of every served value.
        eps: u64,
    },
}

impl StoreMode {
    /// Human-readable name (`lossless` / `lossy`).
    pub fn name(self) -> &'static str {
        match self {
            StoreMode::Lossless => "lossless",
            StoreMode::Lossy { .. } => "lossy",
        }
    }

    fn tag(self) -> u8 {
        match self {
            StoreMode::Lossless => 0,
            StoreMode::Lossy { .. } => 1,
        }
    }

    fn eps(self) -> u64 {
        match self {
            StoreMode::Lossless => 0,
            StoreMode::Lossy { eps } => eps,
        }
    }
}

/// One segment's catalog entry: where its two blobs live in the pack, and
/// the index/time slice of the series it covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Byte offset of the value frame (a self-checksummed container frame).
    pub(crate) data_offset: usize,
    /// Byte length of the value frame.
    pub(crate) data_len: usize,
    /// Byte offset of the timestamp blob (`u64` base + Elias-Fano).
    pub(crate) ts_offset: usize,
    /// Byte length of the timestamp blob.
    pub(crate) ts_len: usize,
    /// CRC-64/XZ of the timestamp blob.
    pub(crate) ts_crc: u64,
    /// Series-global index of the segment's first point.
    pub(crate) first_index: usize,
    /// Number of points in the segment.
    pub(crate) count: usize,
    /// First (smallest) timestamp in the segment.
    pub(crate) t_min: u64,
    /// Last (largest) timestamp in the segment.
    pub(crate) t_max: u64,
}

impl SegmentMeta {
    /// Series-global index of the segment's first point.
    pub fn first_index(&self) -> usize {
        self.first_index
    }

    /// Number of points in the segment.
    pub fn count(&self) -> usize {
        self.count
    }

    /// First timestamp covered.
    pub fn t_min(&self) -> u64 {
        self.t_min
    }

    /// Last timestamp covered.
    pub fn t_max(&self) -> u64 {
        self.t_max
    }

    /// Stored bytes of the segment (value frame + timestamp blob).
    pub fn stored_bytes(&self) -> usize {
        self.data_len + self.ts_len
    }
}

/// One series' catalog entry: its name, compression mode, and time-ordered
/// segment list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesEntry {
    pub(crate) name: String,
    pub(crate) mode: StoreMode,
    pub(crate) segments: Vec<SegmentMeta>,
}

impl SeriesEntry {
    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How the series' segments were compressed.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Number of points across all segments.
    pub fn len(&self) -> usize {
        self.segments.last().map(|s| s.first_index + s.count).unwrap_or(0)
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time-ordered segment table.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// First timestamp across all segments.
    pub fn t_min(&self) -> u64 {
        self.segments.first().map(|s| s.t_min).unwrap_or(0)
    }

    /// Last timestamp across all segments.
    pub fn t_max(&self) -> u64 {
        self.segments.last().map(|s| s.t_max).unwrap_or(0)
    }

    /// Stored bytes across all segments (value frames + timestamp blobs).
    pub fn stored_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.stored_bytes()).sum()
    }
}

/// Renders the catalog bytes for `series` (without footer).
fn write_catalog(series: &[SeriesEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(series.len() as u64);
    for s in series {
        w.bytes(s.name.as_bytes());
        w.u8(s.mode.tag());
        w.u64(s.mode.eps());
        w.u64(s.segments.len() as u64);
        for m in &s.segments {
            w.u64(m.data_offset as u64);
            w.u64(m.data_len as u64);
            w.u64(m.ts_offset as u64);
            w.u64(m.ts_len as u64);
            w.u64(m.ts_crc);
            w.u64(m.first_index as u64);
            w.u64(m.count as u64);
            w.u64(m.t_min);
            w.u64(m.t_max);
        }
    }
    w.finish()
}

/// Appends catalog + footer to a pack whose data region is complete,
/// returning the finished pack bytes.
pub(crate) fn seal(mut pack: Vec<u8>, series: &[SeriesEntry]) -> Vec<u8> {
    debug_assert!(pack.len() >= HEADER_LEN, "seal needs a pack with a header");
    let catalog = write_catalog(series);
    let catalog_offset = pack.len();
    let crc = crc64(&catalog);
    pack.extend_from_slice(&catalog);
    let mut f = WireWriter::new();
    f.u64(catalog_offset as u64);
    f.u64(catalog.len() as u64);
    f.u64(crc);
    f.u64(END_MAGIC);
    pack.extend_from_slice(&f.finish());
    pack
}

/// A fresh pack prefix: header only, data region empty.
pub(crate) fn empty_pack() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(PACK_MAGIC);
    w.u64(PACK_VERSION);
    w.finish()
}

/// Validates the pack framing and catalog of `data` and parses the series
/// table. Returns the entries and the catalog offset (the data region is
/// `HEADER_LEN..catalog_offset`). Every structural invariant queries rely
/// on is checked here; segment *blob* contents are validated lazily when a
/// segment is first opened.
pub(crate) fn parse_pack(data: &[u8]) -> Result<(Vec<SeriesEntry>, usize), StoreError> {
    if data.len() < HEADER_LEN + 8 + FOOTER_LEN {
        return Err(StoreError::Corrupt("pack too short"));
    }
    let mut h = WireReader::new(&data[..HEADER_LEN]);
    if h.u64()? != PACK_MAGIC {
        return Err(StoreError::Corrupt("bad pack magic"));
    }
    if h.u64()? != PACK_VERSION {
        return Err(StoreError::Corrupt("unsupported pack version"));
    }
    let mut f = WireReader::new(&data[data.len() - FOOTER_LEN..]);
    let catalog_offset = f.read_len()?;
    let catalog_len = f.read_len()?;
    let stored_crc = f.u64()?;
    if f.u64()? != END_MAGIC {
        return Err(StoreError::Corrupt("bad pack end magic"));
    }
    // The catalog must end exactly where the footer begins; a single-byte
    // corruption of either footer length field breaks this equality.
    if catalog_offset < HEADER_LEN
        || catalog_offset
            .checked_add(catalog_len)
            .map(|end| end != data.len() - FOOTER_LEN)
            .unwrap_or(true)
    {
        return Err(StoreError::Corrupt("catalog bounds"));
    }
    let catalog = &data[catalog_offset..catalog_offset + catalog_len];
    if crc64(catalog) != stored_crc {
        return Err(StoreError::Corrupt("catalog checksum mismatch"));
    }

    let mut r = WireReader::new(catalog);
    let series_count = r.read_len()?;
    let mut series = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    for _ in 0..series_count {
        let name_bytes = r.bytes_ref()?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StoreError::Corrupt("series name not UTF-8"))?
            .to_string();
        if name.is_empty() {
            return Err(StoreError::Corrupt("empty series name"));
        }
        if seen.insert(name.clone(), ()).is_some() {
            return Err(StoreError::Corrupt("duplicate series name"));
        }
        let mode = match r.u8()? {
            0 => {
                if r.u64()? != 0 {
                    return Err(StoreError::Corrupt("lossless series with nonzero eps"));
                }
                StoreMode::Lossless
            }
            1 => StoreMode::Lossy { eps: r.u64()? },
            _ => return Err(StoreError::Corrupt("unknown series mode")),
        };
        let seg_count = r.read_len()?;
        if seg_count == 0 {
            return Err(StoreError::Corrupt("series with no segments"));
        }
        let mut segments = Vec::with_capacity(seg_count.min(1 << 20));
        let mut next_index = 0usize;
        let mut prev_t_max: Option<u64> = None;
        for _ in 0..seg_count {
            let m = SegmentMeta {
                data_offset: r.read_len()?,
                data_len: r.read_len()?,
                ts_offset: r.read_len()?,
                ts_len: r.read_len()?,
                ts_crc: r.u64()?,
                first_index: r.read_len()?,
                count: r.read_len()?,
                t_min: r.u64()?,
                t_max: r.u64()?,
            };
            if m.count == 0 {
                return Err(StoreError::Corrupt("empty segment"));
            }
            // Segments tile the series' index space contiguously from 0 and
            // partition its time span in order.
            if m.first_index != next_index {
                return Err(StoreError::Corrupt("segment index not contiguous"));
            }
            next_index = m
                .first_index
                .checked_add(m.count)
                .ok_or(StoreError::Corrupt("segment index overflow"))?;
            if m.t_min > m.t_max {
                return Err(StoreError::Corrupt("segment time span inverted"));
            }
            if let Some(p) = prev_t_max {
                if m.t_min <= p {
                    return Err(StoreError::Corrupt("segment time spans overlap"));
                }
            }
            prev_t_max = Some(m.t_max);
            // Both blobs must lie fully inside the data region.
            for (off, len) in [(m.data_offset, m.data_len), (m.ts_offset, m.ts_len)] {
                if off < HEADER_LEN
                    || off
                        .checked_add(len)
                        .map(|end| end > catalog_offset)
                        .unwrap_or(true)
                {
                    return Err(StoreError::Corrupt("segment blob out of bounds"));
                }
            }
            if m.ts_len < 8 {
                return Err(StoreError::Corrupt("timestamp blob too short"));
            }
            segments.push(m);
        }
        series.push(SeriesEntry { name, mode, segments });
    }
    if !r.is_exhausted() {
        return Err(StoreError::Corrupt("catalog trailing bytes"));
    }
    Ok((series, catalog_offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_catalog_roundtrips() {
        let pack = seal(empty_pack(), &[]);
        let (series, off) = parse_pack(&pack).unwrap();
        assert!(series.is_empty());
        assert_eq!(off, HEADER_LEN);
    }

    #[test]
    fn truncations_rejected() {
        let pack = seal(empty_pack(), &[]);
        for cut in 0..pack.len() {
            assert!(parse_pack(&pack[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn catalog_region_per_byte_corruption_rejected() {
        // The catalog region = catalog bytes + footer. Flip every byte of a
        // minimal pack; all are in the catalog region here, and every flip
        // must be rejected.
        let pack = seal(empty_pack(), &[]);
        for pos in HEADER_LEN..pack.len() {
            for bit in [1u8, 0x80] {
                let mut bad = pack.clone();
                bad[pos] ^= bit;
                assert!(parse_pack(&bad).is_err(), "flip at {pos}");
            }
        }
    }
}
