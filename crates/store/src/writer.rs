//! Building packs: batch ingestion, segmentation, and parallel compression.

use crate::format::{self, SegmentMeta, SeriesEntry, StoreMode};
use crate::StoreError;
use neats_core::parallel::{effective_threads, parallel_map_indexed};
use neats_core::{ArchiveFlavor, ArchiveView, NeaTSBuilder};
use succinct::{crc64, EliasFano, Wire, WireWriter};
use timeseries::TimeSeries;

/// Default maximum points per segment. Small enough that a point query
/// validates (on a cache miss) and caches a bounded amount of state, large
/// enough that per-segment overheads (frame header, parameter tables)
/// amortise.
pub const DEFAULT_SEGMENT_POINTS: usize = 8192;

/// Configuration for [`StoreWriter`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Maximum points per segment (must be ≥ 1).
    pub segment_points: usize,
    /// The compression pipeline for segment value columns.
    pub builder: NeaTSBuilder,
    /// Lossless archives, or lossy archives under an error bound.
    pub mode: StoreMode,
    /// Worker threads for the segment-compression fan-out at
    /// [`StoreWriter::finish`] (`0` = automatic, like
    /// [`neats_core::parallel::effective_threads`]).
    pub threads: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_points: DEFAULT_SEGMENT_POINTS,
            builder: neats_core::NeaTS::builder(),
            mode: StoreMode::Lossless,
            threads: 0,
        }
    }
}

struct WriterSeries {
    name: String,
    mode: StoreMode,
    /// Segments already present in the base bytes (append mode).
    committed: Vec<SegmentMeta>,
    /// Pre-compressed `(frame, stamps)` segments accepted by
    /// [`StoreWriter::append_compressed_segment`], emitted between the
    /// committed segments and any raw pending batch.
    pending_sealed: Vec<(Vec<u8>, Vec<u64>)>,
    pending_t: Vec<u64>,
    pending_v: Vec<i64>,
}

impl WriterSeries {
    fn last_timestamp(&self) -> Option<u64> {
        self.pending_t
            .last()
            .copied()
            .or_else(|| self.pending_sealed.last().and_then(|(_, t)| t.last().copied()))
            .or_else(|| self.committed.last().map(|m| m.t_max))
    }
}

/// Builds a pack: ingests `(series, timestamps, values)` batches, splits
/// them into bounded-size segments, and compresses all segments in parallel
/// at [`Self::finish`].
///
/// A writer can start fresh ([`Self::new`]) or from an existing pack
/// ([`Self::append_to`]); in the latter case existing segment bytes are
/// carried over verbatim and new batches append behind them.
/// [`Self::delete_series`] (or deleting + re-ingesting) leaves the old
/// segment bytes in place as *dead* bytes — [`crate::Store::compact`]
/// reclaims them.
pub struct StoreWriter {
    cfg: StoreConfig,
    /// Header + data region accumulated so far (committed blobs verbatim).
    base: Vec<u8>,
    series: Vec<WriterSeries>,
}

impl StoreWriter {
    /// A writer for a fresh pack.
    pub fn new(cfg: StoreConfig) -> Self {
        assert!(cfg.segment_points >= 1, "segment_points must be at least 1");
        Self { cfg, base: format::empty_pack(), series: Vec::new() }
    }

    /// A writer that appends to an existing pack: its catalog is parsed,
    /// its data region (including any dead bytes) is kept verbatim, and new
    /// ingests extend the listed series or add new ones.
    pub fn append_to(pack: &[u8], cfg: StoreConfig) -> Result<Self, StoreError> {
        assert!(cfg.segment_points >= 1, "segment_points must be at least 1");
        let (entries, catalog_offset) = format::parse_pack(pack)?;
        let base = pack[..catalog_offset].to_vec();
        let series = entries
            .into_iter()
            .map(|e| WriterSeries {
                name: e.name,
                mode: e.mode,
                committed: e.segments,
                pending_sealed: Vec::new(),
                pending_t: Vec::new(),
                pending_v: Vec::new(),
            })
            .collect();
        Ok(Self { cfg, base, series })
    }

    /// The names of all series the writer currently holds, in catalog order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// Ingests one batch for `name` (creating the series on first sight,
    /// under the writer's configured mode). Timestamps must strictly
    /// increase within the batch and continue past the series' last stored
    /// timestamp. An empty batch is a no-op.
    pub fn ingest(
        &mut self,
        name: &str,
        timestamps: &[u64],
        values: &[i64],
    ) -> Result<(), StoreError> {
        if timestamps.len() != values.len() {
            return Err(StoreError::LengthMismatch {
                timestamps: timestamps.len(),
                values: values.len(),
            });
        }
        if name.is_empty() {
            return Err(StoreError::EmptyName);
        }
        if timestamps.is_empty() {
            return Ok(());
        }
        let slot = match self.series.iter().position(|s| s.name == name) {
            Some(i) => {
                if self.series[i].mode != self.cfg.mode {
                    return Err(StoreError::ModeMismatch { series: name.to_string() });
                }
                i
            }
            None => {
                self.series.push(WriterSeries {
                    name: name.to_string(),
                    mode: self.cfg.mode,
                    committed: Vec::new(),
                    pending_sealed: Vec::new(),
                    pending_t: Vec::new(),
                    pending_v: Vec::new(),
                });
                self.series.len() - 1
            }
        };
        let s = &mut self.series[slot];
        let mut last = s.last_timestamp();
        for (i, &t) in timestamps.iter().enumerate() {
            if last.map(|p| t <= p).unwrap_or(false) {
                return Err(StoreError::TimestampOrder { series: name.to_string(), index: i });
            }
            last = Some(t);
        }
        s.pending_t.extend_from_slice(timestamps);
        s.pending_v.extend_from_slice(values);
        Ok(())
    }

    /// Appends one **pre-compressed** segment to `name` (creating the series
    /// on first sight): `frame` must be a self-contained container frame as
    /// produced by the compressors' `to_bytes` — e.g. a chunk a live head
    /// already compressed with the streaming writer — and `stamps` its
    /// per-point timestamps. The frame is validated (it must open, its point
    /// count must equal `stamps.len()`, and its flavor must match the
    /// series mode) and then carried into the pack verbatim at
    /// [`Self::finish`], skipping re-compression.
    ///
    /// Pre-compressed segments land *between* the committed segments and any
    /// raw pending batch, so for a given series all calls to this method
    /// must precede calls to [`Self::ingest`] within one writer — a sealed
    /// chunk arriving after raw points would otherwise reorder the series.
    pub fn append_compressed_segment(
        &mut self,
        name: &str,
        frame: &[u8],
        stamps: &[u64],
    ) -> Result<(), StoreError> {
        if name.is_empty() {
            return Err(StoreError::EmptyName);
        }
        let view = ArchiveView::open(frame)?;
        if view.len() != stamps.len() {
            return Err(StoreError::LengthMismatch {
                timestamps: stamps.len(),
                values: view.len(),
            });
        }
        if stamps.is_empty() {
            return Err(StoreError::Corrupt("pre-compressed segment has no points"));
        }
        let slot = match self.series.iter().position(|s| s.name == name) {
            Some(i) => {
                if self.series[i].mode != self.cfg.mode {
                    return Err(StoreError::ModeMismatch { series: name.to_string() });
                }
                i
            }
            None => {
                self.series.push(WriterSeries {
                    name: name.to_string(),
                    mode: self.cfg.mode,
                    committed: Vec::new(),
                    pending_sealed: Vec::new(),
                    pending_t: Vec::new(),
                    pending_v: Vec::new(),
                });
                self.series.len() - 1
            }
        };
        let flavor_ok = match self.cfg.mode {
            StoreMode::Lossless => view.flavor() == ArchiveFlavor::Lossless,
            StoreMode::Lossy { .. } => view.flavor() == ArchiveFlavor::Lossy,
        };
        if !flavor_ok {
            return Err(StoreError::ModeMismatch { series: name.to_string() });
        }
        let s = &mut self.series[slot];
        if !s.pending_t.is_empty() {
            return Err(StoreError::Corrupt("pre-compressed segment after raw pending batch"));
        }
        let mut last = s.last_timestamp();
        for (i, &t) in stamps.iter().enumerate() {
            if last.map(|p| t <= p).unwrap_or(false) {
                return Err(StoreError::TimestampOrder { series: name.to_string(), index: i });
            }
            last = Some(t);
        }
        s.pending_sealed.push((frame.to_vec(), stamps.to_vec()));
        Ok(())
    }

    /// Drops `name` from the catalog. Committed segment bytes stay in the
    /// pack as dead bytes until [`crate::Store::compact`].
    ///
    /// Deleting a series that is not in the catalog is a
    /// [`StoreError::UnknownSeries`] error, not a silent no-op — a retention
    /// job that misspells a series name must hear about it, exactly like a
    /// query for an unknown series would.
    pub fn delete_series(&mut self, name: &str) -> Result<(), StoreError> {
        match self.series.iter().position(|s| s.name == name) {
            Some(i) => {
                self.series.remove(i);
                Ok(())
            }
            None => Err(StoreError::UnknownSeries(name.to_string())),
        }
    }

    /// Compresses every pending batch into segments — fanned out over up to
    /// `cfg.threads` scoped worker threads — and seals the pack (catalog +
    /// footer), returning the finished bytes.
    ///
    /// The output is deterministic and thread-count-invariant: segment
    /// compression itself is bit-identical across thread counts (the PR-2
    /// partitioner guarantee), and blobs are appended in catalog order.
    pub fn finish(self) -> Result<Vec<u8>, StoreError> {
        let StoreWriter { cfg, mut base, series } = self;

        // One task per future segment, across all series.
        struct Task<'a> {
            series: usize,
            stamps: &'a [u64],
            values: &'a [i64],
        }
        let mut tasks: Vec<Task<'_>> = Vec::new();
        for (si, s) in series.iter().enumerate() {
            for start in (0..s.pending_v.len()).step_by(cfg.segment_points) {
                let end = (start + cfg.segment_points).min(s.pending_v.len());
                tasks.push(Task {
                    series: si,
                    stamps: &s.pending_t[start..end],
                    values: &s.pending_v[start..end],
                });
            }
        }

        // The fan-out is across segments, so each task compresses with one
        // partitioner thread — nested parallelism would oversubscribe.
        let inner = cfg.builder.clone().threads(1);
        let threads = effective_threads(cfg.threads);
        let blobs: Vec<(Vec<u8>, Vec<u8>)> = parallel_map_indexed(tasks.len(), threads, |i| {
            let t = &tasks[i];
            let ts = TimeSeries::from_values(t.values.to_vec());
            let frame = match series[t.series].mode {
                StoreMode::Lossless => inner.build(&ts).to_bytes(),
                StoreMode::Lossy { eps } => inner.build_lossy(&ts, eps).to_bytes(),
            };
            let base_t = t.stamps[0];
            let rebased: Vec<u64> = t.stamps.iter().map(|&x| x - base_t).collect();
            let mut w = WireWriter::new();
            w.u64(base_t);
            EliasFano::new(&rebased).write(&mut w);
            (frame, w.finish())
        });

        // Append blobs in task order and assemble the catalog.
        let mut entries: Vec<SeriesEntry> = series
            .iter()
            .map(|s| SeriesEntry {
                name: s.name.clone(),
                mode: s.mode,
                segments: s.committed.clone(),
            })
            .collect();
        // Pre-compressed segments land first, between each series' committed
        // segments and its freshly-compressed batch segments (the order
        // `append_compressed_segment` promises).
        for (si, s) in series.iter().enumerate() {
            for (frame, stamps) in &s.pending_sealed {
                let entry = &mut entries[si];
                let first_index = entry.len();
                let data_offset = base.len();
                base.extend_from_slice(frame);
                let base_t = stamps[0];
                let rebased: Vec<u64> = stamps.iter().map(|&x| x - base_t).collect();
                let mut w = WireWriter::new();
                w.u64(base_t);
                EliasFano::new(&rebased).write(&mut w);
                let ts_blob = w.finish();
                let ts_offset = base.len();
                base.extend_from_slice(&ts_blob);
                entry.segments.push(SegmentMeta {
                    data_offset,
                    data_len: frame.len(),
                    ts_offset,
                    ts_len: ts_blob.len(),
                    ts_crc: crc64(&ts_blob),
                    first_index,
                    count: stamps.len(),
                    t_min: stamps[0],
                    t_max: *stamps.last().expect("non-empty sealed segment"),
                });
            }
        }
        for (task, (frame, ts_blob)) in tasks.iter().zip(&blobs) {
            let entry = &mut entries[task.series];
            let first_index = entry.len();
            let data_offset = base.len();
            base.extend_from_slice(frame);
            let ts_offset = base.len();
            base.extend_from_slice(ts_blob);
            entry.segments.push(SegmentMeta {
                data_offset,
                data_len: frame.len(),
                ts_offset,
                ts_len: ts_blob.len(),
                ts_crc: crc64(ts_blob),
                first_index,
                count: task.values.len(),
                t_min: task.stamps[0],
                t_max: *task.stamps.last().expect("non-empty task"),
            });
        }
        // A series that ended up with no segments (created then deleted, or
        // never filled) has no catalog entry.
        entries.retain(|e| !e.segments.is_empty());
        Ok(format::seal(base, &entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_batches() {
        let mut w = StoreWriter::new(StoreConfig::default());
        assert!(matches!(w.ingest("", &[1], &[1]), Err(StoreError::EmptyName)));
        assert!(matches!(
            w.ingest("a", &[1, 2], &[1]),
            Err(StoreError::LengthMismatch { .. })
        ));
        assert!(matches!(
            w.ingest("a", &[5, 5], &[1, 2]),
            Err(StoreError::TimestampOrder { index: 1, .. })
        ));
        w.ingest("a", &[1, 2, 3], &[10, 20, 30]).unwrap();
        // The next batch must continue past stamp 3.
        assert!(matches!(
            w.ingest("a", &[3, 4], &[1, 2]),
            Err(StoreError::TimestampOrder { index: 0, .. })
        ));
        w.ingest("a", &[4], &[40]).unwrap();
    }

    #[test]
    fn empty_batch_is_noop_and_creates_nothing() {
        let mut w = StoreWriter::new(StoreConfig::default());
        w.ingest("ghost", &[], &[]).unwrap();
        assert!(w.series_names().is_empty());
        let pack = w.finish().unwrap();
        let (entries, _) = format::parse_pack(&pack).unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn segments_split_at_the_configured_size() {
        let cfg = StoreConfig { segment_points: 100, ..StoreConfig::default() };
        let mut w = StoreWriter::new(cfg);
        let stamps: Vec<u64> = (0..250).collect();
        let values: Vec<i64> = (0..250).collect();
        w.ingest("s", &stamps, &values).unwrap();
        let pack = w.finish().unwrap();
        let (entries, _) = format::parse_pack(&pack).unwrap();
        assert_eq!(entries.len(), 1);
        let segs = entries[0].segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs.iter().map(|m| m.count()).collect::<Vec<_>>(), vec![100, 100, 50]);
        assert_eq!(segs[1].first_index(), 100);
        assert_eq!(segs[2].t_min(), 200);
    }

    #[test]
    fn pre_compressed_segments_roundtrip() {
        use crate::Store;

        // Compress two chunks out-of-band (as a live head would)…
        let v1: Vec<i64> = (0..100).map(|k| k * 3).collect();
        let v2: Vec<i64> = (0..60).map(|k| 300 + k).collect();
        let f1 = neats_core::NeaTS::compress(&TimeSeries::from_values(v1.clone())).to_bytes();
        let f2 = neats_core::NeaTS::compress(&TimeSeries::from_values(v2.clone())).to_bytes();
        let t1: Vec<u64> = (0..100).map(|i| 10 + i * 2).collect();
        let t2: Vec<u64> = (0..60).map(|i| 1000 + i * 5).collect();

        // …then hand them to the writer, followed by a raw tail batch.
        let mut w = StoreWriter::new(StoreConfig::default());
        w.append_compressed_segment("s", &f1, &t1).unwrap();
        w.append_compressed_segment("s", &f2, &t2).unwrap();
        w.ingest("s", &[2000, 2001], &[7, 8]).unwrap();
        let store = Store::open(w.finish().unwrap()).unwrap();

        let mut expect = v1;
        expect.extend(&v2);
        expect.extend([7, 8]);
        assert_eq!(store.series("s").unwrap().len(), expect.len());
        let mut got = Vec::new();
        store.range("s", 0..expect.len(), &mut got).unwrap();
        assert_eq!(got, expect);
        assert_eq!(store.at_time("s", 1000).unwrap(), Some(300));
        assert_eq!(store.timestamp("s", 161).unwrap(), 2001);
    }

    #[test]
    fn pre_compressed_segment_validation() {
        let values: Vec<i64> = (0..50).collect();
        let frame = neats_core::NeaTS::compress(&TimeSeries::from_values(values)).to_bytes();
        let stamps: Vec<u64> = (0..50).collect();

        let mut w = StoreWriter::new(StoreConfig::default());
        assert!(matches!(
            w.append_compressed_segment("", &frame, &stamps),
            Err(StoreError::EmptyName)
        ));
        // Count mismatch between frame and stamps.
        assert!(matches!(
            w.append_compressed_segment("s", &frame, &stamps[..49]),
            Err(StoreError::LengthMismatch { .. })
        ));
        // Garbage frame bytes.
        assert!(w.append_compressed_segment("s", &frame[..frame.len() - 1], &stamps).is_err());
        // Non-increasing stamps.
        let mut bad = stamps.clone();
        bad[10] = bad[9];
        assert!(matches!(
            w.append_compressed_segment("s", &frame, &bad),
            Err(StoreError::TimestampOrder { index: 10, .. })
        ));
        w.append_compressed_segment("s", &frame, &stamps).unwrap();
        // The next segment must continue past the last stamp.
        assert!(matches!(
            w.append_compressed_segment("s", &frame, &stamps),
            Err(StoreError::TimestampOrder { index: 0, .. })
        ));
        // A lossy frame cannot enter a lossless store.
        let ts = TimeSeries::from_values((0..50).map(|k| k * k).collect::<Vec<i64>>());
        let lossy = neats_core::NeaTS::builder().build_lossy(&ts, 16).to_bytes();
        let next: Vec<u64> = (100..150).collect();
        assert!(matches!(
            w.append_compressed_segment("s", &lossy, &next),
            Err(StoreError::ModeMismatch { .. })
        ));
        // Raw points pending ⇒ no more sealed segments for that series.
        w.ingest("s", &[100], &[1]).unwrap();
        assert!(matches!(
            w.append_compressed_segment("s", &frame, &[200]),
            Err(StoreError::LengthMismatch { .. })
        ));
        let next: Vec<u64> = (200..250).collect();
        assert!(matches!(
            w.append_compressed_segment("s", &frame, &next),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn finish_is_thread_count_invariant() {
        let build = |threads: usize| {
            let cfg = StoreConfig { segment_points: 64, threads, ..StoreConfig::default() };
            let mut w = StoreWriter::new(cfg);
            for name in ["a", "b", "c"] {
                let stamps: Vec<u64> = (0..300).map(|i| i * 7).collect();
                let values: Vec<i64> =
                    (0..300).map(|k: i64| k * k % 91 - (name.len() as i64)).collect();
                w.ingest(name, &stamps, &values).unwrap();
            }
            w.finish().unwrap()
        };
        let one = build(1);
        assert_eq!(one, build(2), "threads=2 diverges");
        assert_eq!(one, build(4), "threads=4 diverges");
    }
}
