//! The concurrent reader: open a pack once, serve many series zero-copy.

use crate::cache::{CacheSharding, CacheStats, SegmentCache};
use crate::format::{self, SegmentMeta, SeriesEntry};
use crate::segment::SegmentView;
use crate::StoreError;
use neats_core::Estimate;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Options for [`Store::open_with`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Target number of opened segment views kept cached across all series
    /// (`0` disables caching: every query revalidates its segment). The
    /// budget is divided over the cache's shards, so an uneven working set
    /// can briefly hold up to `shards − 1` more entries than this.
    pub cache_capacity: usize,
    /// How lookups map to the cache's independently locked shards:
    /// [`CacheSharding::ByKey`] (default — every view cached once, shared)
    /// or [`CacheSharding::ByThread`] (a fixed thread pool runs
    /// lock-contention-free at the price of per-thread duplicates).
    pub cache_sharding: CacheSharding,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            cache_capacity: 256,
            cache_sharding: CacheSharding::ByKey,
        }
    }
}

/// A read-only, thread-safe view over a pack.
///
/// The pack bytes are held once in an `Arc<[u8]>`; every query runs through
/// a borrowed [`neats_core::ArchiveView`] over a slice of that buffer — no
/// per-query copy of archive data. Opened (validated) segment views are
/// kept in a sharded LRU cache, so a working set of hot segments is served
/// without re-running checksums. `Store` is `Send + Sync`; share it behind
/// an `Arc` and query from any number of threads.
pub struct Store {
    data: Arc<[u8]>,
    series: Vec<SeriesEntry>,
    index: HashMap<String, usize>,
    catalog_offset: usize,
    cache: SegmentCache,
    /// Segments that failed validation on load, keyed like the cache:
    /// sticky for this `Store` value so one bad segment fails fast instead
    /// of re-running (and re-failing) its checksum on every query, while
    /// every other segment keeps serving.
    quarantined: Mutex<HashSet<(u32, u32)>>,
    /// Times a segment *entered* quarantine (monotone, unlike the set size,
    /// which `clear_quarantine` can shrink) — the event counter `/metrics`
    /// exposes.
    quarantine_events: AtomicU64,
}

impl Store {
    /// Opens a pack from bytes with default [`StoreOptions`], validating
    /// the header, footer, catalog checksum, and every catalog invariant.
    pub fn open(data: impl Into<Arc<[u8]>>) -> Result<Self, StoreError> {
        Self::open_with(data, StoreOptions::default())
    }

    /// [`Self::open`] with explicit options.
    pub fn open_with(
        data: impl Into<Arc<[u8]>>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let data = data.into();
        let (series, catalog_offset) = format::parse_pack(&data)?;
        let index = series
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        Ok(Self {
            data,
            series,
            index,
            catalog_offset,
            cache: SegmentCache::new(options.cache_capacity, options.cache_sharding),
            quarantined: Mutex::new(HashSet::new()),
            quarantine_events: AtomicU64::new(0),
        })
    }

    /// Opens a pack file from disk (one read into the shared buffer).
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open(std::fs::read(path)?)
    }

    /// The pack bytes the store serves from.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Series names in catalog order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name()).collect()
    }

    /// Number of series in the catalog.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// The catalog entry for `name`, if present.
    pub fn series(&self, name: &str) -> Option<&SeriesEntry> {
        self.index.get(name).map(|&i| &self.series[i])
    }

    /// All catalog entries, in catalog order.
    pub fn entries(&self) -> &[SeriesEntry] {
        &self.series
    }

    /// Total points across all series.
    pub fn total_points(&self) -> usize {
        self.series.iter().map(|s| s.len()).sum()
    }

    /// Bytes in the data region not referenced by any live segment —
    /// left behind by deleted or re-ingested series and reclaimable with
    /// [`Self::compact`].
    pub fn dead_bytes(&self) -> usize {
        let live: usize = self.series.iter().map(|s| s.stored_bytes()).sum();
        (self.catalog_offset - format::HEADER_LEN).saturating_sub(live)
    }

    /// Hit/miss counters of the segment-view cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn entry(&self, name: &str) -> Result<(usize, &SeriesEntry), StoreError> {
        match self.index.get(name) {
            Some(&i) => Ok((i, &self.series[i])),
            None => Err(StoreError::UnknownSeries(name.to_string())),
        }
    }

    /// Opens (or fetches from cache) segment `seg` of series `si`. A
    /// segment that fails validation is quarantined: this and every later
    /// query touching it get [`StoreError::Quarantined`] without re-running
    /// the checksum, and all other segments keep serving.
    fn open_segment(&self, si: usize, seg: usize) -> Result<Arc<SegmentView>, StoreError> {
        let key = (si as u32, seg as u32);
        if self
            .quarantined
            .lock()
            .expect("quarantine lock")
            .contains(&key)
        {
            return Err(self.quarantine_error(si, seg));
        }
        let meta = &self.series[si].segments()[seg];
        let opened = self.cache.get_or_open(key, || {
            if neats_core::failpoint::triggered("store.open_segment") {
                return Err(StoreError::Corrupt(
                    "injected failpoint: store.open_segment",
                ));
            }
            SegmentView::open(&self.data, meta)
        });
        match opened {
            Ok(view) => Ok(view),
            Err(StoreError::Corrupt(_) | StoreError::Wire(_)) => {
                if self
                    .quarantined
                    .lock()
                    .expect("quarantine lock")
                    .insert(key)
                {
                    self.quarantine_events.fetch_add(1, Ordering::Relaxed);
                }
                Err(self.quarantine_error(si, seg))
            }
            Err(e) => Err(e),
        }
    }

    fn quarantine_error(&self, si: usize, seg: usize) -> StoreError {
        StoreError::Quarantined {
            series: self.series[si].name().to_string(),
            segment: seg,
        }
    }

    /// Number of quarantined segments (segments that failed validation on
    /// load and now fail fast; see [`StoreError::Quarantined`]).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.lock().expect("quarantine lock").len()
    }

    /// Total times a segment entered quarantine since open (monotone — not
    /// reduced by [`Self::clear_quarantine`]).
    pub fn quarantine_events(&self) -> u64 {
        self.quarantine_events.load(Ordering::Relaxed)
    }

    /// The quarantined segments, as `(series name, segment index)` pairs
    /// in deterministic order.
    pub fn quarantined(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .quarantined
            .lock()
            .expect("quarantine lock")
            .iter()
            .map(|&(si, seg)| (self.series[si as usize].name().to_string(), seg as usize))
            .collect();
        out.sort();
        out
    }

    /// Lifts every quarantine, so the next query revalidates the segment
    /// (useful after a transient fault; a genuinely corrupt segment fails
    /// validation again and returns to quarantine). Returns how many
    /// entries were cleared.
    pub fn clear_quarantine(&self) -> usize {
        let mut q = self.quarantined.lock().expect("quarantine lock");
        let n = q.len();
        q.clear();
        n
    }

    /// Index of the segment of `s` covering point `idx` (caller checks
    /// `idx < s.len()`; segments tile the index space contiguously).
    fn segment_of_index(s: &SeriesEntry, idx: usize) -> usize {
        s.segments()
            .partition_point(|m| m.first_index + m.count <= idx)
    }

    /// Index of the first segment of `s` whose span may contain `t`
    /// (`segments().len()` when `t` is past the last segment).
    fn segment_of_time(s: &SeriesEntry, t: u64) -> usize {
        s.segments().partition_point(|m| m.t_max < t)
    }

    fn check_range(s: &SeriesEntry, range: &Range<usize>) -> Result<(), StoreError> {
        if range.start > range.end || range.end > s.len() {
            return Err(StoreError::BadRange {
                start: range.start,
                end: range.end,
                len: s.len(),
            });
        }
        Ok(())
    }

    /// The value at series-global position `idx` (exact for lossless
    /// series, ε-bounded for lossy ones).
    pub fn get(&self, name: &str, idx: usize) -> Result<i64, StoreError> {
        let (si, s) = self.entry(name)?;
        if idx >= s.len() {
            return Err(StoreError::OutOfRange {
                index: idx,
                len: s.len(),
            });
        }
        let seg = Self::segment_of_index(s, idx);
        let view = self.open_segment(si, seg)?;
        Ok(view.archive().at(idx - s.segments()[seg].first_index))
    }

    /// The timestamp of the point at series-global position `idx`.
    pub fn timestamp(&self, name: &str, idx: usize) -> Result<u64, StoreError> {
        let (si, s) = self.entry(name)?;
        if idx >= s.len() {
            return Err(StoreError::OutOfRange {
                index: idx,
                len: s.len(),
            });
        }
        let seg = Self::segment_of_index(s, idx);
        let view = self.open_segment(si, seg)?;
        Ok(view.timestamp(idx - s.segments()[seg].first_index))
    }

    /// The value recorded exactly at timestamp `t`, if any.
    pub fn at_time(&self, name: &str, t: u64) -> Result<Option<i64>, StoreError> {
        let (si, s) = self.entry(name)?;
        let seg = Self::segment_of_time(s, t);
        if seg == s.segments().len() || t < s.segments()[seg].t_min {
            return Ok(None);
        }
        let view = self.open_segment(si, seg)?;
        Ok(view.index_of_time(t).map(|i| view.archive().at(i)))
    }

    /// Appends the values at series-global positions `range` to `out`,
    /// stitching across segment boundaries.
    pub fn range(
        &self,
        name: &str,
        range: Range<usize>,
        out: &mut Vec<i64>,
    ) -> Result<(), StoreError> {
        let (si, s) = self.entry(name)?;
        Self::check_range(s, &range)?;
        self.for_each_overlap(si, s, &range, |view, local| {
            view.archive().range(local, out);
            Ok(())
        })
    }

    /// Streams the values at series-global positions `range` to `f` in
    /// segment-sized chunks, in order, without materialising the whole
    /// range: each chunk is decoded from the segment's zero-copy view into
    /// an internal buffer reused across segments, so peak allocation is
    /// bounded by the segment size, not the range length. This is the
    /// accessor the serving layer renders responses from.
    pub fn range_chunks(
        &self,
        name: &str,
        range: Range<usize>,
        mut f: impl FnMut(&[i64]),
    ) -> Result<(), StoreError> {
        let (si, s) = self.entry(name)?;
        Self::check_range(s, &range)?;
        let mut buf = Vec::new();
        self.for_each_overlap(si, s, &range, |view, local| {
            buf.clear();
            view.archive().range(local, &mut buf);
            f(&buf);
            Ok(())
        })
    }

    /// Appends all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` to `out`, stitching across segment boundaries.
    pub fn range_by_time(
        &self,
        name: &str,
        t_lo: u64,
        t_hi: u64,
        out: &mut Vec<(u64, i64)>,
    ) -> Result<(), StoreError> {
        self.range_by_time_chunks(name, t_lo, t_hi, |chunk| out.extend_from_slice(chunk))
    }

    /// Streams all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` to `f` in segment-sized chunks, in order — the
    /// time-indexed counterpart of [`Self::range_chunks`], with the same
    /// bounded-allocation guarantee.
    pub fn range_by_time_chunks(
        &self,
        name: &str,
        t_lo: u64,
        t_hi: u64,
        mut f: impl FnMut(&[(u64, i64)]),
    ) -> Result<(), StoreError> {
        let (si, s) = self.entry(name)?;
        if t_hi < t_lo {
            return Ok(());
        }
        let mut seg = Self::segment_of_time(s, t_lo);
        let mut values = Vec::new();
        let mut pairs = Vec::new();
        while seg < s.segments().len() && s.segments()[seg].t_min <= t_hi {
            let view = self.open_segment(si, seg)?;
            let first = view.lower_bound(t_lo);
            let end = view.stamps_leq(t_hi);
            if first < end {
                values.clear();
                view.archive().range(first..end, &mut values);
                pairs.clear();
                pairs.reserve(end - first);
                for (off, &v) in values.iter().enumerate() {
                    pairs.push((view.timestamp(first + off), v));
                }
                f(&pairs);
            }
            seg += 1;
        }
        Ok(())
    }

    /// Folds `f` over every segment overlapping `range`, passing the opened
    /// view and the segment-local subrange — the shared walk under every
    /// stitched range query and aggregate pushdown.
    fn for_each_overlap(
        &self,
        si: usize,
        s: &SeriesEntry,
        range: &Range<usize>,
        mut f: impl FnMut(&SegmentView, Range<usize>) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        if range.is_empty() {
            return Ok(());
        }
        let mut seg = Self::segment_of_index(s, range.start);
        let mut pos = range.start;
        while pos < range.end {
            let meta = &s.segments()[seg];
            let to = range.end.min(meta.first_index + meta.count);
            let view = self.open_segment(si, seg)?;
            f(&view, pos - meta.first_index..to - meta.first_index)?;
            pos = to;
            seg += 1;
        }
        Ok(())
    }

    /// Exact sum over `range`, pushed down to each overlapping segment and
    /// stitched (as `i128` to avoid overflow).
    pub fn sum(&self, name: &str, range: Range<usize>) -> Result<i128, StoreError> {
        let (si, s) = self.entry(name)?;
        Self::check_range(s, &range)?;
        let mut acc = 0i128;
        self.for_each_overlap(si, s, &range, |view, local| {
            acc += view.archive().sum_range_exact(local.start, local.len());
            Ok(())
        })?;
        Ok(acc)
    }

    /// Approximate sum over `range` from the learned functions only, with a
    /// guaranteed error bound: per-segment estimates are additive in both
    /// value and bound.
    pub fn sum_estimate(&self, name: &str, range: Range<usize>) -> Result<Estimate, StoreError> {
        let (si, s) = self.entry(name)?;
        Self::check_range(s, &range)?;
        let mut value = 0.0f64;
        let mut max_error = 0.0f64;
        self.for_each_overlap(si, s, &range, |view, local| {
            let e = view.archive().sum_range_estimate(local.start, local.len());
            value += e.value;
            max_error += e.max_error;
            Ok(())
        })?;
        Ok(Estimate { value, max_error })
    }

    /// Exact minimum and maximum over `range`, pushed down per segment and
    /// folded (`None` for an empty range).
    pub fn min_max(
        &self,
        name: &str,
        range: Range<usize>,
    ) -> Result<Option<(i64, i64)>, StoreError> {
        let (si, s) = self.entry(name)?;
        Self::check_range(s, &range)?;
        let mut acc: Option<(i64, i64)> = None;
        self.for_each_overlap(si, s, &range, |view, local| {
            if let Some((lo, hi)) = view.archive().min_max_range_exact(local.start, local.len()) {
                acc = Some(match acc {
                    Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                    None => (lo, hi),
                });
            }
            Ok(())
        })?;
        Ok(acc)
    }

    /// Runs `f` against the opened zero-copy view of one segment — the
    /// escape hatch for queries the stitched API doesn't cover.
    pub fn with_segment<R>(
        &self,
        name: &str,
        seg: usize,
        f: impl FnOnce(&neats_core::ArchiveView<'_>) -> R,
    ) -> Result<R, StoreError> {
        let (si, s) = self.entry(name)?;
        if seg >= s.segments().len() {
            return Err(StoreError::OutOfRange {
                index: seg,
                len: s.segments().len(),
            });
        }
        let view = self.open_segment(si, seg)?;
        Ok(f(view.archive()))
    }

    /// Rewrites the pack keeping only live segments: blob bytes are copied
    /// verbatim (no recompression), offsets are rebased, dead bytes and
    /// superseded catalogs are dropped. The result opens to a store
    /// answering every query identically, with [`Self::dead_bytes`] `== 0`.
    ///
    /// **Catalog ordering guarantee.** The rewritten catalog lists series in
    /// the source pack's catalog order, each series' segments in their
    /// (index-contiguous, time-ordered) table order, and the rewritten data
    /// region lays blobs out in exactly that order — value frame then
    /// timestamp blob per segment, ascending offsets, no gaps. A pack that
    /// already has this canonical shape (the output of any `compact()`, and
    /// any freshly written pack) therefore compacts to *byte-identical*
    /// output: `compact` is idempotent. The regression test
    /// `compact_preserves_catalog_order_and_is_idempotent` pins both
    /// properties.
    pub fn compact(&self) -> Vec<u8> {
        let mut pack = format::empty_pack();
        let mut entries = Vec::with_capacity(self.series.len());
        for s in &self.series {
            let mut segments = Vec::with_capacity(s.segments().len());
            for m in s.segments() {
                let data_offset = pack.len();
                pack.extend_from_slice(&self.data[m.data_offset..m.data_offset + m.data_len]);
                let ts_offset = pack.len();
                pack.extend_from_slice(&self.data[m.ts_offset..m.ts_offset + m.ts_len]);
                segments.push(SegmentMeta {
                    data_offset,
                    ts_offset,
                    ..m.clone()
                });
            }
            entries.push(SeriesEntry {
                name: s.name.clone(),
                mode: s.mode(),
                segments,
            });
        }
        format::seal(pack, &entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, StoreWriter};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn store_is_send_and_sync() {
        assert_send_sync::<Store>();
    }

    fn demo_pack(segment_points: usize) -> (Vec<u64>, Vec<i64>, Vec<u8>) {
        let stamps: Vec<u64> = (0..1000u64).map(|i| 1_000 + i * 3).collect();
        let values: Vec<i64> = (0..1000).map(|k: i64| (k * k) / 37 - k).collect();
        let mut w = StoreWriter::new(StoreConfig {
            segment_points,
            ..StoreConfig::default()
        });
        w.ingest("demo", &stamps, &values).unwrap();
        let pack = w.finish().unwrap();
        (stamps, values, pack)
    }

    #[test]
    fn point_and_range_queries_stitch_across_segments() {
        let (stamps, values, pack) = demo_pack(128);
        let store = Store::open(pack).unwrap();
        let s = store.series("demo").unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.segments().len(), 1000usize.div_ceil(128));
        for k in (0..1000).step_by(37) {
            assert_eq!(store.get("demo", k).unwrap(), values[k]);
            assert_eq!(store.timestamp("demo", k).unwrap(), stamps[k]);
            assert_eq!(store.at_time("demo", stamps[k]).unwrap(), Some(values[k]));
        }
        // Gap timestamps resolve to None.
        assert_eq!(store.at_time("demo", stamps[10] + 1).unwrap(), None);
        assert_eq!(store.at_time("demo", 0).unwrap(), None);
        assert_eq!(store.at_time("demo", u64::MAX).unwrap(), None);
        // A range spanning several segment boundaries.
        let mut out = Vec::new();
        store.range("demo", 100..900, &mut out).unwrap();
        assert_eq!(out, &values[100..900]);
        // Aggregates match the scan.
        let want_sum: i128 = values[100..900].iter().map(|&v| v as i128).sum();
        assert_eq!(store.sum("demo", 100..900).unwrap(), want_sum);
        let (lo, hi) = store.min_max("demo", 100..900).unwrap().unwrap();
        assert_eq!(lo, *values[100..900].iter().min().unwrap());
        assert_eq!(hi, *values[100..900].iter().max().unwrap());
        let est = store.sum_estimate("demo", 100..900).unwrap();
        assert!((est.value - want_sum as f64).abs() <= est.max_error);
        // Empty ranges.
        assert_eq!(store.sum("demo", 500..500).unwrap(), 0);
        assert_eq!(store.min_max("demo", 500..500).unwrap(), None);
    }

    #[test]
    fn range_chunks_streams_the_same_values() {
        let (stamps, values, pack) = demo_pack(128);
        let store = Store::open(pack).unwrap();
        // Chunked streaming concatenates to exactly the materialised range,
        // and each chunk is bounded by the segment size.
        let mut streamed = Vec::new();
        let mut chunks = 0usize;
        store
            .range_chunks("demo", 100..900, |chunk| {
                assert!(!chunk.is_empty() && chunk.len() <= 128);
                streamed.extend_from_slice(chunk);
                chunks += 1;
            })
            .unwrap();
        assert_eq!(streamed, &values[100..900]);
        assert!(
            chunks >= 800 / 128,
            "expected one chunk per overlapped segment"
        );
        // Empty range: no callback at all.
        store
            .range_chunks("demo", 500..500, |_| panic!("no chunks for empty range"))
            .unwrap();
        // Errors mirror range().
        assert!(matches!(
            store.range_chunks("nope", 0..1, |_| {}),
            Err(StoreError::UnknownSeries(_))
        ));
        assert!(matches!(
            store.range_chunks("demo", 5..2000, |_| {}),
            Err(StoreError::BadRange { .. })
        ));
        // The time-indexed counterpart agrees with range_by_time.
        let mut by_time = Vec::new();
        store
            .range_by_time("demo", stamps[100], stamps[899], &mut by_time)
            .unwrap();
        let mut streamed_t = Vec::new();
        store
            .range_by_time_chunks("demo", stamps[100], stamps[899], |chunk| {
                streamed_t.extend_from_slice(chunk)
            })
            .unwrap();
        assert_eq!(streamed_t, by_time);
    }

    #[test]
    fn range_by_time_matches_filter() {
        let (stamps, values, pack) = demo_pack(100);
        let store = Store::open(pack).unwrap();
        for (t_lo, t_hi) in [
            (0, u64::MAX),
            (stamps[50], stamps[750]),
            (stamps[99] + 1, stamps[400]),
        ] {
            let mut got = Vec::new();
            store.range_by_time("demo", t_lo, t_hi, &mut got).unwrap();
            let want: Vec<(u64, i64)> = stamps
                .iter()
                .zip(&values)
                .filter(|(&t, _)| t >= t_lo && t <= t_hi)
                .map(|(&t, &v)| (t, v))
                .collect();
            assert_eq!(got, want, "[{t_lo}, {t_hi}]");
        }
        let mut inverted = Vec::new();
        store.range_by_time("demo", 10, 5, &mut inverted).unwrap();
        assert!(inverted.is_empty());
    }

    #[test]
    fn errors_are_structured() {
        let (_, _, pack) = demo_pack(128);
        let store = Store::open(pack).unwrap();
        assert!(matches!(
            store.get("nope", 0),
            Err(StoreError::UnknownSeries(_))
        ));
        assert!(matches!(
            store.get("demo", 1000),
            Err(StoreError::OutOfRange {
                index: 1000,
                len: 1000
            })
        ));
        assert!(matches!(
            store.range("demo", 5..2000, &mut Vec::new()),
            Err(StoreError::BadRange { .. })
        ));
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = store.sum("demo", 9..3);
        assert!(matches!(inverted, Err(StoreError::BadRange { .. })));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let (_, values, pack) = demo_pack(128);
        let store = Store::open_with(
            pack.clone(),
            StoreOptions {
                cache_capacity: 4,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            assert_eq!(store.get("demo", 5).unwrap(), values[5]);
        }
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!(stats.entries >= 1);
        assert!(stats.hit_rate() > 0.6);

        // capacity 0 disables caching: every lookup is a miss.
        let cold = Store::open_with(
            pack,
            StoreOptions {
                cache_capacity: 0,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            cold.get("demo", 5).unwrap();
        }
        let stats = cold.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn by_thread_sharding_gives_each_thread_a_private_shard() {
        let (_, values, pack) = demo_pack(128);
        let store = Store::open_with(
            pack,
            StoreOptions {
                cache_capacity: 8,
                cache_sharding: CacheSharding::ByThread,
            },
        )
        .unwrap();
        // Two fresh threads hammer the same segment: each misses once into
        // its own shard (consecutive thread slots always land on distinct
        // shards of an 8-shard cache), then hits its private copy.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..5 {
                        assert_eq!(store.get("demo", 5).unwrap(), values[5]);
                    }
                });
            }
        });
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 2, "one open per thread, not one total");
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.entries, 2, "the hot view is duplicated per thread");
    }

    #[test]
    fn delete_and_compact_reclaim_dead_bytes() {
        let mut w = StoreWriter::new(StoreConfig {
            segment_points: 64,
            ..Default::default()
        });
        let stamps: Vec<u64> = (0..500).collect();
        let keep: Vec<i64> = (0..500).map(|k: i64| k * 3 % 101).collect();
        let drop_v: Vec<i64> = (0..500).map(|k: i64| k).collect();
        w.ingest("keep", &stamps, &keep).unwrap();
        w.ingest("drop", &stamps, &drop_v).unwrap();
        let pack = w.finish().unwrap();

        // Delete one series through an appending writer. Deleting a series
        // that is (no longer) present is a typed error, not a silent no-op.
        let mut w = StoreWriter::append_to(&pack, StoreConfig::default()).unwrap();
        w.delete_series("drop").unwrap();
        assert!(matches!(
            w.delete_series("drop"),
            Err(StoreError::UnknownSeries(_))
        ));
        assert!(matches!(
            w.delete_series("never-existed"),
            Err(StoreError::UnknownSeries(_))
        ));
        let pack2 = w.finish().unwrap();
        let store = Store::open(pack2).unwrap();
        assert_eq!(store.series_names(), vec!["keep"]);
        assert!(store.dead_bytes() > 0, "deleted blobs must be counted dead");

        // Compaction drops the dead bytes and preserves every answer.
        let compacted = store.compact();
        assert!(compacted.len() < store.as_bytes().len());
        let small = Store::open(compacted).unwrap();
        assert_eq!(small.dead_bytes(), 0);
        for k in (0..500).step_by(17) {
            assert_eq!(small.get("keep", k).unwrap(), keep[k]);
            assert_eq!(small.timestamp("keep", k).unwrap(), stamps[k]);
        }
        // Compacting a compact pack is a fixed point.
        assert_eq!(small.compact(), small.as_bytes());
    }

    #[test]
    fn compact_preserves_catalog_order_and_is_idempotent() {
        // Build a pack whose catalog order ("b", "a", "c") differs from
        // alphabetical AND whose data-region blob order differs from catalog
        // order (re-ingesting "b" after deleting it moves its live blobs
        // *behind* "a"'s and "c"'s while it stays first in no catalog — the
        // interesting case compact must not reorder).
        let stamps: Vec<u64> = (0..300).collect();
        let mk = |salt: i64| -> Vec<i64> { (0..300).map(|k: i64| k * salt % 97).collect() };
        let cfg = || StoreConfig {
            segment_points: 64,
            ..StoreConfig::default()
        };
        let mut w = StoreWriter::new(cfg());
        w.ingest("b", &stamps, &mk(3)).unwrap();
        w.ingest("a", &stamps, &mk(5)).unwrap();
        w.ingest("c", &stamps, &mk(7)).unwrap();
        let pack = w.finish().unwrap();

        let mut w = StoreWriter::append_to(&pack, cfg()).unwrap();
        w.delete_series("b").unwrap();
        w.ingest("b", &stamps, &mk(11)).unwrap();
        let pack = w.finish().unwrap();

        let store = Store::open(pack).unwrap();
        assert_eq!(
            store.series_names(),
            vec!["a", "c", "b"],
            "re-ingest moves b last"
        );
        assert!(store.dead_bytes() > 0);

        // Compaction keeps the catalog order and drops the dead bytes…
        let compacted = store.compact();
        let small = Store::open(compacted.clone()).unwrap();
        assert_eq!(small.series_names(), vec!["a", "c", "b"]);
        assert_eq!(small.dead_bytes(), 0);
        // …the rewritten data region is laid out in catalog order with
        // ascending, gap-free offsets…
        let mut expect_offset = format::HEADER_LEN;
        for e in small.entries() {
            for m in e.segments() {
                assert_eq!(m.data_offset, expect_offset, "frame offset out of order");
                expect_offset += m.data_len;
                assert_eq!(m.ts_offset, expect_offset, "ts blob offset out of order");
                expect_offset += m.ts_len;
            }
        }
        // …every answer survives…
        for (name, salt) in [("a", 5), ("c", 7), ("b", 11)] {
            let want = mk(salt);
            for k in (0..300).step_by(23) {
                assert_eq!(small.get(name, k).unwrap(), want[k], "{name}[{k}]");
            }
        }
        // …and a just-compacted pack is a fixed point: compacting again is
        // byte-identical.
        assert_eq!(small.compact(), compacted, "compact must be idempotent");
    }

    #[test]
    fn append_extends_a_series() {
        let mut w = StoreWriter::new(StoreConfig {
            segment_points: 64,
            ..Default::default()
        });
        let s1: Vec<u64> = (0..200).collect();
        let v1: Vec<i64> = (0..200).map(|k: i64| k % 17).collect();
        w.ingest("s", &s1, &v1).unwrap();
        let pack = w.finish().unwrap();

        let mut w = StoreWriter::append_to(
            &pack,
            StoreConfig {
                segment_points: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let s2: Vec<u64> = (200..300).collect();
        let v2: Vec<i64> = (0..100).map(|k: i64| -k).collect();
        w.ingest("s", &s2, &v2).unwrap();
        let pack2 = w.finish().unwrap();
        let store = Store::open(pack2).unwrap();
        let all: Vec<i64> = v1.iter().chain(&v2).copied().collect();
        let mut out = Vec::new();
        store.range("s", 0..300, &mut out).unwrap();
        assert_eq!(out, all);
        assert_eq!(store.timestamp("s", 250).unwrap(), 250);
        assert_eq!(store.at_time("s", 250).unwrap(), Some(v2[50]));
    }

    #[test]
    fn corrupt_segment_is_quarantined_not_fatal() {
        let stamps: Vec<u64> = (0..512u64).map(|i| 1_000 + i * 3).collect();
        let va: Vec<i64> = (0..512).map(|k: i64| k * k % 91).collect();
        let vb: Vec<i64> = (0..512).map(|k: i64| 7 - k).collect();
        let mut w = StoreWriter::new(StoreConfig {
            segment_points: 128,
            ..Default::default()
        });
        w.ingest("a", &stamps, &va).unwrap();
        w.ingest("b", &stamps, &vb).unwrap();
        let mut pack = w.finish().unwrap();

        // Flip one byte inside segment 2 of series "a": the pack still
        // opens (segment blobs are validated lazily), but that segment's
        // checksum can no longer pass.
        let (bad_off, bad_first) = {
            let probe = Store::open(pack.clone()).unwrap();
            let m = &probe.series("a").unwrap().segments()[2];
            (m.data_offset + m.data_len / 2, m.first_index)
        };
        pack[bad_off] ^= 0x40;
        let store = Store::open(pack).unwrap();

        // A query into the bad segment quarantines it — typed, per-segment.
        let hit = store.get("a", bad_first + 1);
        assert_eq!(
            hit,
            Err(StoreError::Quarantined {
                series: "a".into(),
                segment: 2
            }),
            "expected a quarantine, got {hit:?}"
        );
        assert_eq!(store.quarantined_count(), 1);
        assert_eq!(store.quarantined(), vec![("a".to_string(), 2)]);

        // Repeats fail fast with the same error (no revalidation churn).
        assert!(matches!(
            store.get("a", bad_first),
            Err(StoreError::Quarantined { segment: 2, .. })
        ));
        // A range crossing the bad segment reports the quarantine too.
        let mut out = Vec::new();
        assert!(matches!(
            store.range("a", 0..512, &mut out),
            Err(StoreError::Quarantined { .. })
        ));

        // Every other segment of "a" and the whole of "b" keep serving.
        out.clear();
        store.range("a", 0..128, &mut out).unwrap();
        assert_eq!(out, &va[0..128]);
        assert_eq!(store.get("a", 500).unwrap(), va[500]);
        out.clear();
        store.range("b", 0..512, &mut out).unwrap();
        assert_eq!(out, vb);

        // Lifting the quarantine forces a revalidation; genuinely corrupt
        // bytes fail again and the segment returns to quarantine.
        assert_eq!(store.clear_quarantine(), 1);
        assert_eq!(store.quarantined_count(), 0);
        assert!(matches!(
            store.get("a", bad_first),
            Err(StoreError::Quarantined { segment: 2, .. })
        ));
        assert_eq!(store.quarantined_count(), 1);
    }
}
