//! Optimal Piecewise Linear Approximation (PLA) — O'Rourke's algorithm.
//!
//! The paper's strongest lossy baseline (§IV-B): repeatedly take the longest
//! fragment admitting a linear ε-approximation, which yields the minimum
//! number of segments (O'Rourke 1981; the paper re-implements it as no code
//! is public). We reuse the workspace's stabbing-line fitter with the linear
//! kind, so PLA and NeaTS share the exact same geometric core.

use neats_core::fit::{greedy_partition, model_value, Fragment, Kind};
use succinct::EliasFano;
use timeseries::TimeSeries;

/// A piecewise linear ε-approximation with random access.
#[derive(Clone, Debug)]
pub struct Pla {
    n: usize,
    eps: u64,
    starts: EliasFano,
    /// Per-segment (slope, intercept).
    params: Vec<(f64, f64)>,
}

impl Pla {
    /// Builds the minimum-segment PLA under error bound `eps`.
    pub fn compress(ts: &TimeSeries, eps: u64) -> Self {
        let values = ts.values();
        // Past 2^53 the f64 fit/eval round trip costs a few ULPs; the fit
        // is tightened by `float_eval_slack` as a first estimate and the
        // measured integer-domain error closes the loop (slope error over a
        // long segment can exceed any fixed ULP multiple), mirroring
        // `NeaTSLossy::compress_with_threads`.
        let mut slack = neats_core::fit::float_eval_slack(values, 0);
        loop {
            let fit_eps = eps.saturating_sub(slack);
            let frags = if values.is_empty() {
                Vec::new()
            } else {
                greedy_partition(values, Kind::Linear, fit_eps, 0)
            };
            let starts: Vec<u64> = frags.iter().map(|f| f.start as u64).collect();
            let params: Vec<(f64, f64)> =
                frags.iter().map(|f| (f.params.m, f.params.b)).collect();
            let out = Self { n: values.len(), eps, starts: EliasFano::new(&starts), params };
            let overshoot = out.max_error(ts).saturating_sub(eps.saturating_add(1));
            if overshoot == 0 || fit_eps == 0 {
                return out;
            }
            slack = slack.saturating_add(overshoot.max(slack).max(1));
        }
    }

    /// Number of data points represented.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the approximation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of linear segments.
    pub fn segment_count(&self) -> usize {
        self.params.len()
    }

    /// The error bound the approximation was built under.
    pub fn eps(&self) -> u64 {
        self.eps
    }

    fn fragment(&self, i: usize) -> Fragment {
        let start = self.starts.get(i) as usize;
        let end =
            if i + 1 < self.params.len() { self.starts.get(i + 1) as usize } else { self.n };
        let (m, b) = self.params[i];
        Fragment {
            kind: Kind::Linear,
            params: neats_core::Params { m, b, extra: 0.0 },
            start,
            end,
            origin: start,
        }
    }

    /// The approximated value at position `k`.
    pub fn approximate(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.rank_leq(k as u64) - 1;
        model_value(&self.fragment(i), k, 0)
    }

    /// Materialises the whole approximated series.
    pub fn reconstruct(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.params.len() {
            let f = self.fragment(i);
            for k in f.start..f.end {
                out.push(model_value(&f, k, 0));
            }
        }
        out
    }

    /// Compressed size: Elias-Fano starts plus two doubles per segment.
    pub fn size_in_bytes(&self) -> usize {
        8 + self.starts.size_in_bytes() + self.params.len() * 16
    }

    /// Measured maximum absolute error.
    pub fn max_error(&self, original: &TimeSeries) -> u64 {
        let recon = self.reconstruct();
        original
            .values()
            .iter()
            .zip(&recon)
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap_or(0)
    }

    /// Mean Absolute Percentage Error in % (see
    /// [`timeseries::types::mape_pct`] for the near-zero handling).
    pub fn mape(&self, original: &TimeSeries) -> f64 {
        timeseries::mape_pct(original, &self.reconstruct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_line(n: usize, seed: u64, noise: i64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        TimeSeries::from_values(
            (0..n).map(|k| 7 * k as i64 + rng.random_range(-noise..=noise)).collect(),
        )
    }

    #[test]
    fn error_bound_holds() {
        let ts = noisy_line(3000, 1, 20);
        for eps in [5u64, 25, 100] {
            let pla = Pla::compress(&ts, eps);
            assert!(pla.max_error(&ts) <= eps + 1, "eps {eps}: {}", pla.max_error(&ts));
        }
    }

    #[test]
    fn error_bound_holds_beyond_f64_exact_integer_range() {
        // Regression: values past 2^53 lose integer precision in the f64
        // fit/eval round trip, which used to push the reconstruction a few
        // units outside ε + 1. The fit is now tightened by the slack.
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: i64 = -(3 << 53);
        let ts = TimeSeries::from_values(
            (0..4000).map(|_| { v += rng.random_range(-(1i64 << 42)..(1i64 << 42)); v }).collect(),
        );
        let eps = ts.delta() / 200;
        let pla = Pla::compress(&ts, eps);
        assert_eq!(pla.eps(), eps);
        assert!(pla.max_error(&ts) <= eps + 1, "err {} > {}", pla.max_error(&ts), eps + 1);
    }

    #[test]
    fn single_segment_for_near_linear_data() {
        let ts = noisy_line(5000, 2, 3);
        let pla = Pla::compress(&ts, 10);
        assert_eq!(pla.segment_count(), 1);
        assert!(pla.size_in_bytes() < 100);
    }

    #[test]
    fn random_access_matches_reconstruct() {
        let ts = noisy_line(2000, 3, 200);
        let pla = Pla::compress(&ts, 30);
        let recon = pla.reconstruct();
        for k in (0..ts.len()).step_by(13) {
            assert_eq!(pla.approximate(k), recon[k]);
        }
    }

    #[test]
    fn empty_series() {
        let pla = Pla::compress(&TimeSeries::from_values(vec![]), 5);
        assert!(pla.is_empty());
        assert_eq!(pla.segment_count(), 0);
    }

    #[test]
    fn more_segments_on_curvier_data() {
        let curvy =
            TimeSeries::from_values((0..3000).map(|k| ((k * k) / 50) as i64).collect());
        let flat = noisy_line(3000, 4, 1);
        let pc = Pla::compress(&curvy, 5).segment_count();
        let pf = Pla::compress(&flat, 5).segment_count();
        assert!(pc > pf, "curvy {pc} !> flat {pf}");
    }
}
