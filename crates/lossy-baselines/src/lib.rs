//! # lossy-baselines — the paper's lossy competitors
//!
//! * [`pla::Pla`] — optimal Piecewise Linear Approximation (O'Rourke 1981),
//!   the minimum-segment linear baseline of Table II.
//! * [`aa::AdaptiveApprox`] — the Adaptive Approximation heuristic
//!   (Xu et al., EDBT 2012) combining anchored linear, exponential, and
//!   quadratic functions, also from Table II.
//!
//! Both implement the same interface as [`neats_core::NeaTSLossy`]
//! (compress / approximate / reconstruct / size / max_error / MAPE), so the
//! Table II harness treats the three uniformly.

#![warn(missing_docs)]
pub mod aa;
pub mod pla;

pub use aa::AdaptiveApprox;
pub use pla::Pla;
