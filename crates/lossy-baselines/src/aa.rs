//! Adaptive Approximation (AA) — Xu et al., EDBT 2012 / WWW J. 2015.
//!
//! The paper's nonlinear lossy baseline: an *online heuristic* that segments
//! the series with linear, exponential, and quadratic functions, each forced
//! to pass through the first data point of its segment. Per the paper's
//! analysis (§IV-B), AA produces more fragments than NeaTS-L because of the
//! heuristic partitioning and sub-optimal per-kind fits — which is exactly
//! the behaviour this implementation reproduces:
//!
//! * Anchored linear `y₀ + θ·(u−1)` and anchored exponential
//!   `y₀·e^(θ·(u−1))` maintain a feasible interval for their single
//!   parameter θ (interval intersection — optimal for the anchored family).
//! * Anchored quadratic `y₀ + θ₁·(u−1) + θ₂·(u−1)²` maintains its
//!   two-parameter feasibility with the stabbing-line structure.
//! * The segment is cut when *no* family can absorb the next point; the
//!   surviving family with the fewest parameters wins ties.

use neats_core::fit::stab::StabbingLine;
use succinct::EliasFano;
use timeseries::TimeSeries;

/// The function family chosen for one AA segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AaKind {
    /// `y₀ + θ·(u−1)` — 2 stored values (y₀, θ).
    Linear,
    /// `y₀·e^(θ·(u−1))` — 2 stored values.
    Exponential,
    /// `y₀ + θ₁·(u−1) + θ₂·(u−1)²` — 3 stored values.
    Quadratic,
}

/// Parameters of one AA segment.
#[derive(Clone, Copy, Debug)]
struct AaSegment {
    kind: AaKind,
    y0: f64,
    theta1: f64,
    theta2: f64,
}

impl AaSegment {
    #[inline]
    fn eval(&self, du: f64) -> f64 {
        match self.kind {
            AaKind::Linear => self.y0 + self.theta1 * du,
            AaKind::Exponential => self.y0 * (self.theta1 * du).exp(),
            AaKind::Quadratic => self.y0 + self.theta1 * du + self.theta2 * du * du,
        }
    }
}

/// One-parameter feasible-interval fitter for the anchored families.
#[derive(Clone, Copy, Debug)]
struct IntervalFit {
    lo: f64,
    hi: f64,
    alive: bool,
}

impl IntervalFit {
    fn new() -> Self {
        Self { lo: f64::NEG_INFINITY, hi: f64::INFINITY, alive: true }
    }

    /// Intersects with `[lo, hi]`; kills the fit if empty.
    fn narrow(&mut self, lo: f64, hi: f64) -> bool {
        if !self.alive {
            return false;
        }
        self.lo = self.lo.max(lo);
        self.hi = self.hi.min(hi);
        self.alive = self.lo <= self.hi;
        self.alive
    }

    fn mid(&self) -> f64 {
        if self.lo.is_finite() && self.hi.is_finite() {
            0.5 * (self.lo + self.hi)
        } else if self.lo.is_finite() {
            self.lo
        } else if self.hi.is_finite() {
            self.hi
        } else {
            0.0
        }
    }
}

/// An AA-compressed lossy series with random access.
#[derive(Clone, Debug)]
pub struct AdaptiveApprox {
    n: usize,
    eps: u64,
    starts: EliasFano,
    segments: Vec<AaSegment>,
}

impl AdaptiveApprox {
    /// Compresses `ts` under error bound `eps`.
    pub fn compress(ts: &TimeSeries, eps: u64) -> Self {
        let values = ts.values();
        // Past 2^53 the f64 fit/eval round trip costs a few ULPs; the fit
        // is tightened by `float_eval_slack` as a first estimate and the
        // measured integer-domain error closes the loop, mirroring
        // `NeaTSLossy::compress_with_threads`.
        let mut slack = neats_core::fit::float_eval_slack(values, 0);
        loop {
            let fit_eps = eps.saturating_sub(slack);
            let e = fit_eps as f64;
            let mut segments = Vec::new();
            let mut starts = Vec::new();
            let mut i = 0usize;
            while i < values.len() {
                let (seg, len) = fit_segment(&values[i..], e);
                starts.push(i as u64);
                segments.push(seg);
                i += len;
            }
            let out = Self { n: values.len(), eps, starts: EliasFano::new(&starts), segments };
            let overshoot = out.max_error(ts).saturating_sub(eps.saturating_add(1));
            if overshoot == 0 || fit_eps == 0 {
                return out;
            }
            slack = slack.saturating_add(overshoot.max(slack).max(1));
        }
    }

    /// Number of data points represented.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the approximation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The error bound the approximation was built under.
    pub fn eps(&self) -> u64 {
        self.eps
    }

    /// The approximated value at position `k`.
    pub fn approximate(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.rank_leq(k as u64) - 1;
        let start = self.starts.get(i) as usize;
        let v = self.segments[i].eval((k - start) as f64);
        if v.is_finite() {
            v.round().clamp(i64::MIN as f64, i64::MAX as f64) as i64
        } else {
            0
        }
    }

    /// Materialises the whole approximated series.
    pub fn reconstruct(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.segments.len() {
            let start = self.starts.get(i) as usize;
            let end =
                if i + 1 < self.segments.len() { self.starts.get(i + 1) as usize } else { self.n };
            let seg = self.segments[i];
            for k in start..end {
                let v = seg.eval((k - start) as f64);
                out.push(v.round().clamp(i64::MIN as f64, i64::MAX as f64) as i64);
            }
        }
        out
    }

    /// Compressed size: starts plus (2 or 3) doubles and a tag per segment.
    pub fn size_in_bytes(&self) -> usize {
        let params: usize = self
            .segments
            .iter()
            .map(|s| 1 + 8 * if s.kind == AaKind::Quadratic { 3 } else { 2 })
            .sum();
        8 + self.starts.size_in_bytes() + params
    }

    /// Measured maximum absolute error.
    pub fn max_error(&self, original: &TimeSeries) -> u64 {
        let recon = self.reconstruct();
        original.values().iter().zip(&recon).map(|(&a, &b)| a.abs_diff(b)).max().unwrap_or(0)
    }

    /// Mean Absolute Percentage Error in % (see
    /// [`timeseries::types::mape_pct`] for the near-zero handling).
    pub fn mape(&self, original: &TimeSeries) -> f64 {
        timeseries::mape_pct(original, &self.reconstruct())
    }
}

/// Fits one segment starting at `values[0]`, returning the chosen function
/// and the number of points covered (≥ 1).
fn fit_segment(values: &[i64], e: f64) -> (AaSegment, usize) {
    let y0 = values[0] as f64;
    // Feasible-parameter states for the three anchored families.
    let mut lin = IntervalFit::new();
    let mut exp = IntervalFit::new();
    let mut exp_alive = y0 > 0.0;
    let mut quad = StabbingLine::new();
    let mut quad_alive = true;

    // Last point index each family could still cover, and a parameter
    // snapshot taken when the family dies (or at the end).
    let mut lin_len = 1usize;
    let mut exp_len = 1usize;
    let mut quad_len = 1usize;
    let mut lin_params = 0.0f64;
    let mut exp_params = 0.0f64;
    let mut quad_params = (0.0f64, 0.0f64);

    let mut k = 1usize;
    while k < values.len() {
        let du = k as f64;
        let y = values[k] as f64;
        let mut any = false;

        if lin.alive {
            // y0 + θ·du ∈ [y−e, y+e]  ⟺  θ ∈ [(y−e−y0)/du, (y+e−y0)/du]
            if lin.narrow((y - e - y0) / du, (y + e - y0) / du) {
                lin_len = k + 1;
                lin_params = lin.mid();
                any = true;
            }
        }
        if exp_alive {
            // y0·e^(θ·du) ∈ [y−e, y+e], valid only while y−e > 0
            if y - e > 0.0 {
                if exp.narrow(((y - e) / y0).ln() / du, ((y + e) / y0).ln() / du) {
                    exp_len = k + 1;
                    exp_params = exp.mid();
                    any = true;
                } else {
                    exp_alive = false;
                }
            } else {
                exp_alive = false;
            }
        }
        if quad_alive {
            // y0 + θ1·du + θ2·du² ∈ [y−e, y+e] ⟺ (y−e−y0)/du ≤ θ1 + θ2·du ≤ …
            // treat as stabbing with t = du, m = θ2, b = θ1.
            if quad.try_add(du, (y - e - y0) / du, (y + e - y0) / du) {
                quad_len = k + 1;
                if let Some(l) = quad.solution() {
                    quad_params = (l.intercept, l.slope); // (θ1, θ2)
                }
                any = true;
            } else {
                quad_alive = false;
            }
        }
        if !any {
            break;
        }
        k += 1;
    }

    // Pick the longest-surviving family; fewest parameters breaks ties.
    let best = lin_len.max(exp_len).max(quad_len);
    let seg = if lin_len == best {
        AaSegment { kind: AaKind::Linear, y0, theta1: lin_params, theta2: 0.0 }
    } else if exp_len == best {
        AaSegment { kind: AaKind::Exponential, y0, theta1: exp_params, theta2: 0.0 }
    } else {
        AaSegment { kind: AaKind::Quadratic, y0, theta1: quad_params.0, theta2: quad_params.1 }
    };
    (seg, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 5000i64;
        TimeSeries::from_values((0..n).map(|_| { v += rng.random_range(-20..21); v }).collect())
    }

    #[test]
    fn error_bound_holds() {
        let ts = noisy(3000, 1);
        for eps in [10u64, 50, 200] {
            let aa = AdaptiveApprox::compress(&ts, eps);
            // round() + anchored eval keeps |err| ≤ eps + 1 (rounding slack)
            assert!(aa.max_error(&ts) <= eps + 1, "eps {eps}: err {}", aa.max_error(&ts));
        }
    }

    #[test]
    fn error_bound_holds_beyond_f64_exact_integer_range() {
        // Regression: same f64-precision issue as PLA — see
        // `neats_core::fit::float_eval_slack`.
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: i64 = 3 << 53;
        let ts = TimeSeries::from_values(
            (0..4000).map(|_| { v += rng.random_range(-(1i64 << 42)..(1i64 << 42)); v }).collect(),
        );
        let eps = ts.delta() / 200;
        let aa = AdaptiveApprox::compress(&ts, eps);
        assert_eq!(aa.eps(), eps);
        assert!(aa.max_error(&ts) <= eps + 1, "err {} > {}", aa.max_error(&ts), eps + 1);
    }

    #[test]
    fn first_point_of_each_segment_is_exact() {
        let ts = noisy(2000, 2);
        let aa = AdaptiveApprox::compress(&ts, 40);
        for i in 0..aa.segment_count() {
            let start = aa.starts.get(i) as usize;
            assert_eq!(aa.approximate(start), ts.values()[start], "segment {i} anchor");
        }
    }

    #[test]
    fn exponential_data_uses_exponential_segments() {
        let values: Vec<i64> =
            (0..3000).map(|u| (500.0 * (0.001 * u as f64).exp()).round() as i64).collect();
        let ts = TimeSeries::from_values(values);
        let aa = AdaptiveApprox::compress(&ts, 2);
        assert!(
            aa.segments.iter().any(|s| s.kind == AaKind::Exponential),
            "no exponential segment chosen"
        );
    }

    #[test]
    fn random_access_matches_reconstruct() {
        let ts = noisy(1500, 3);
        let aa = AdaptiveApprox::compress(&ts, 30);
        let recon = aa.reconstruct();
        for k in (0..ts.len()).step_by(11) {
            assert_eq!(aa.approximate(k), recon[k], "k={k}");
        }
    }

    #[test]
    fn handles_non_positive_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = 10i64;
        let ts = TimeSeries::from_values(
            (0..1000).map(|_| { v += rng.random_range(-5..5); v }).collect(),
        );
        assert!(ts.values().iter().any(|&v| v <= 0));
        let aa = AdaptiveApprox::compress(&ts, 8);
        assert!(aa.max_error(&ts) <= 9);
    }

    #[test]
    fn empty_series() {
        let aa = AdaptiveApprox::compress(&TimeSeries::from_values(vec![]), 5);
        assert!(aa.is_empty());
        assert_eq!(aa.segment_count(), 0);
    }
}
