//! Property-based tests for the succinct substrate.

use proptest::prelude::*;
use succinct::{BitBuf, BitVector, EliasFano, PackedIVec, PackedVec, WaveletMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitbuf_roundtrip(items in prop::collection::vec((0u64..u64::MAX, 1usize..=64), 0..200)) {
        let mut buf = BitBuf::new();
        let mut recorded = Vec::new();
        let mut pos = 0;
        for (v, w) in items {
            let v = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            buf.push_bits(v, w);
            recorded.push((pos, w, v));
            pos += w;
        }
        prop_assert_eq!(buf.len(), pos);
        for (p, w, v) in recorded {
            prop_assert_eq!(buf.get_bits(p, w), v);
        }
    }

    #[test]
    fn bitvec_rank_select_consistent(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
        let bv = BitVector::from_bools(&bits);
        prop_assert_eq!(bv.count_ones() + bv.count_zeros(), bits.len());
        // rank at every position matches a running counter
        let mut ones = 0;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bv.rank1(i), ones);
            if b { ones += 1; }
        }
        prop_assert_eq!(bv.rank1(bits.len()), ones);
        // select1 is the inverse of rank1 on one-positions
        for k in 0..bv.count_ones() {
            let p = bv.select1(k).unwrap();
            prop_assert!(bv.get(p));
            prop_assert_eq!(bv.rank1(p), k);
        }
        for k in 0..bv.count_zeros() {
            let p = bv.select0(k).unwrap();
            prop_assert!(!bv.get(p));
            prop_assert_eq!(bv.rank0(p), k);
        }
    }

    #[test]
    fn elias_fano_access_and_rank(deltas in prop::collection::vec(0u64..1000, 1..300)) {
        let mut acc = 0u64;
        let values: Vec<u64> = deltas.iter().map(|&d| { acc += d; acc }).collect();
        let ef = EliasFano::new(&values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(ef.get(i), v);
        }
        // rank_leq at a few probe points
        let max = *values.last().unwrap();
        for probe in [0, max / 3, max / 2, max, max + 1] {
            let expected = values.iter().filter(|&&v| v <= probe).count();
            prop_assert_eq!(ef.rank_leq(probe), expected);
        }
    }

    #[test]
    fn packed_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300)) {
        let p = PackedVec::new(&values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn packed_signed_roundtrip(values in prop::collection::vec(any::<i64>(), 0..300)) {
        let p = PackedIVec::new(&values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn wavelet_access_rank(symbols in prop::collection::vec(0u8..12, 0..400)) {
        let wm = WaveletMatrix::new(&symbols);
        for (i, &s) in symbols.iter().enumerate() {
            prop_assert_eq!(wm.access(i), s);
        }
        let mut counts = [0usize; 12];
        for (i, &s) in symbols.iter().enumerate() {
            prop_assert_eq!(wm.rank(s, i), counts[s as usize]);
            counts[s as usize] += 1;
        }
        for s in 0..12u8 {
            prop_assert_eq!(wm.rank(s, symbols.len()), counts[s as usize]);
        }
    }

    #[test]
    fn elias_fano_predecessor(deltas in prop::collection::vec(1u64..100, 1..100), probe in 0u64..12_000) {
        let mut acc = 0u64;
        let values: Vec<u64> = deltas.iter().map(|&d| { acc += d; acc }).collect();
        let ef = EliasFano::new(&values);
        let expected = values.iter().rposition(|&v| v <= probe);
        prop_assert_eq!(ef.predecessor_index(probe), expected);
    }

    #[test]
    fn ones_iter_matches_naive_bit_loop(bits in prop::collection::vec(any::<bool>(), 0..3000)) {
        let bv = BitVector::from_bools(&bits);
        // The streaming word-scan iterator must yield exactly the positions a
        // naive per-bit loop finds, in order.
        let naive: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        let streamed: Vec<usize> = bv.iter_ones().collect();
        prop_assert_eq!(&streamed, &naive);
        prop_assert_eq!(bv.iter_ones().len(), naive.len());
        // size_hint stays exact while the iterator drains.
        let mut it = bv.iter_ones();
        for consumed in 0..naive.len() {
            prop_assert_eq!(it.size_hint(), (naive.len() - consumed, Some(naive.len() - consumed)));
            it.next();
        }
        prop_assert_eq!(it.next(), None);
    }

    #[test]
    fn elias_fano_iter_matches_naive(deltas in prop::collection::vec(0u64..5000, 0..500)) {
        let mut acc = 0u64;
        let values: Vec<u64> = deltas.iter().map(|&d| { acc += d; acc }).collect();
        let ef = EliasFano::new(&values);
        // The streaming iterator must equal a per-index `get` loop (which in
        // turn is tested against the input), including for duplicates and
        // empty sequences.
        let via_get: Vec<u64> = (0..ef.len()).map(|i| ef.get(i)).collect();
        let streamed: Vec<u64> = ef.iter().collect();
        prop_assert_eq!(&streamed, &via_get);
        prop_assert_eq!(&streamed, &values);
        prop_assert_eq!(ef.iter().len(), values.len());
        // Partial consumption keeps the remainder consistent.
        let mut it = ef.iter();
        let skip = values.len() / 2;
        for _ in 0..skip {
            it.next();
        }
        let tail: Vec<u64> = it.collect();
        prop_assert_eq!(&tail[..], &values[skip..]);
    }
}
