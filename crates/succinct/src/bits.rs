//! Low-level bit-packed buffers: append-only writer and random-access reader.
//!
//! The corrections stream `C` of the NeaTS layout (paper §III-C) is a plain
//! bit string where the i-th fragment's residuals occupy a contiguous run of
//! fixed-width codes. [`BitBuf`] provides the append (compression-time) and
//! random-access read (query-time) operations over a `Vec<u64>` backing store.

/// An append-only, randomly-readable bit buffer.
///
/// Bits are stored LSB-first within each 64-bit word: the bit at global
/// position `p` lives in word `p / 64` at bit `p % 64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Vec<u64>,
    /// Number of valid bits.
    len: usize,
}

impl BitBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer contains no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the backing store in bytes (capacity-trimmed).
    pub fn size_in_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Appends the `width` low bits of `value` (`width` ≤ 64).
    ///
    /// `width == 0` is a no-op; `value` must fit in `width` bits.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value < (1u64 << width), "value {value} overflows width {width}");
        if width == 0 {
            return;
        }
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("non-empty by invariant") |= value << bit;
            if bit + width > 64 {
                self.words.push(value >> (64 - bit));
            }
        }
        self.len += width;
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(bit as u64, 1);
    }

    /// Reads `width` bits starting at bit position `pos` (`width` ≤ 64).
    ///
    /// # Panics
    /// Panics in debug mode if `pos + width > self.len()`.
    #[inline]
    pub fn get_bits(&self, pos: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        debug_assert!(pos + width <= self.len, "read past end: {pos}+{width} > {}", self.len);
        if width == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        let lo = self.words[word] >> bit;
        let value = if bit + width <= 64 {
            lo
        } else {
            lo | (self.words[word + 1] << (64 - bit))
        };
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Reads the single bit at `pos`.
    #[inline]
    pub fn get_bit(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// The raw backing words (the final word may contain garbage above `len`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a buffer from raw words and a bit length.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(len <= words.len() * 64);
        Self { words, len }
    }

    /// Shrinks the backing allocation to fit.
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }
}

/// Minimum number of bits needed to represent `value` (0 needs 0 bits).
#[inline]
pub fn bits_for(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Number of bits needed for a signed residual in `[-bound, bound]`,
/// i.e. ⌈log₂(2·bound + 1)⌉ as in the paper (§II).
///
/// Computed as `bits_for(bound) + 1` (identical for bound ≥ 1, and free of
/// the `2·bound` overflow), capped at 64: residuals beyond ±2⁶³ are stored
/// as full wrapping 64-bit words.
#[inline]
pub fn bits_for_residual_bound(bound: u64) -> usize {
    if bound == 0 {
        0
    } else {
        (bits_for(bound) + 1).min(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer() {
        let b = BitBuf::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.size_in_bytes(), 0);
    }

    #[test]
    fn push_and_get_roundtrip_aligned() {
        let mut b = BitBuf::new();
        for i in 0..100u64 {
            b.push_bits(i, 8);
        }
        for i in 0..100u64 {
            assert_eq!(b.get_bits(i as usize * 8, 8), i);
        }
    }

    #[test]
    fn push_and_get_unaligned_widths() {
        let widths = [1, 3, 7, 13, 17, 31, 33, 63, 64, 5];
        let mut b = BitBuf::new();
        let mut expected = Vec::new();
        let mut pos = 0usize;
        for (i, &w) in widths.iter().cycle().take(200).enumerate() {
            let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & if w == 64 { u64::MAX } else { (1 << w) - 1 };
            b.push_bits(v, w);
            expected.push((pos, w, v));
            pos += w;
        }
        assert_eq!(b.len(), pos);
        for (p, w, v) in expected {
            assert_eq!(b.get_bits(p, w), v, "at pos {p} width {w}");
        }
    }

    #[test]
    fn zero_width_is_noop() {
        let mut b = BitBuf::new();
        b.push_bits(0, 0);
        assert_eq!(b.len(), 0);
        b.push_bits(5, 3);
        b.push_bits(0, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get_bits(0, 3), 5);
        assert_eq!(b.get_bits(3, 0), 0);
    }

    #[test]
    fn single_bits() {
        let mut b = BitBuf::new();
        let pattern = [true, false, true, true, false, false, true, false];
        for _ in 0..50 {
            for &bit in &pattern {
                b.push_bit(bit);
            }
        }
        for i in 0..b.len() {
            assert_eq!(b.get_bit(i), pattern[i % 8], "bit {i}");
        }
    }

    #[test]
    fn full_word_values() {
        let mut b = BitBuf::new();
        b.push_bits(3, 2); // force misalignment
        b.push_bits(u64::MAX, 64);
        b.push_bits(0xDEAD_BEEF_CAFE_BABE, 64);
        assert_eq!(b.get_bits(0, 2), 3);
        assert_eq!(b.get_bits(2, 64), u64::MAX);
        assert_eq!(b.get_bits(66, 64), 0xDEAD_BEEF_CAFE_BABE);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn residual_bound_bits_match_paper_formula() {
        // ⌈log2(2ε+1)⌉
        for eps in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20] {
            let expected = (2.0 * eps as f64 + 1.0).log2().ceil() as usize;
            assert_eq!(bits_for_residual_bound(eps), expected, "eps={eps}");
        }
    }

    #[test]
    fn from_words_roundtrip() {
        let mut b = BitBuf::new();
        b.push_bits(0b101, 3);
        b.push_bits(0xFFFF, 16);
        let b2 = BitBuf::from_words(b.words().to_vec(), b.len());
        assert_eq!(b, b2);
    }
}
