//! CRC-64 checksums for the archive container frame.
//!
//! The variant is CRC-64/XZ (the reflected ECMA-182 polynomial, as used by
//! `xz`): init and xorout all-ones, reflected input/output. A CRC of degree
//! 64 detects *every* error burst shorter than 64 bits, so any single-byte
//! (or single-bit) corruption of a framed archive is rejected
//! deterministically, not merely with high probability.

/// Reflected ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slice-by-8 lookup tables (16 KiB), built at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte through
/// `k` further zero bytes, letting the hot loop fold 8 input bytes per
/// iteration — archive opens checksum the whole file, so this pass must run
/// at memory speed, not byte-loop speed.
static TABLES: [[u64; 256]; 8] = build_tables();

const fn build_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Incremental CRC-64/XZ digest over one or more byte slices.
#[derive(Clone, Copy, Debug)]
pub struct Crc64(u64);

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Self(!0)
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            crc ^= u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            crc = TABLES[7][(crc & 0xFF) as usize]
                ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
                ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
                ^ TABLES[4][((crc >> 24) & 0xFF) as usize]
                ^ TABLES[3][((crc >> 32) & 0xFF) as usize]
                ^ TABLES[2][((crc >> 40) & 0xFF) as usize]
                ^ TABLES[1][((crc >> 48) & 0xFF) as usize]
                ^ TABLES[0][((crc >> 56) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.0 = crc;
    }

    /// Finishes the digest and returns the checksum.
    pub fn finish(self) -> u64 {
        !self.0
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The CRC catalogue's check input for every variant.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc64::new();
        for chunk in data.chunks(37) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc64(&data));
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 + 3) as u8).collect();
        let base = crc64(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(crc64(&corrupted), base, "flip at {pos}:{bit} undetected");
            }
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(&[]), 0);
    }
}
