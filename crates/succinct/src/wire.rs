//! A minimal, dependency-free wire format for persisting the succinct
//! structures (and the compressed layouts built on them) to disk.
//!
//! Encoding conventions: little-endian fixed-width integers, `u64` lengths,
//! no padding. Deserialisation is *validating*: truncated or corrupt input
//! yields [`WireError`], never a panic or an out-of-bounds read.

use crate::bits::BitBuf;
use crate::bitvec::BitVector;
use crate::elias_fano::EliasFano;
use crate::packed::PackedVec;
use crate::views::{
    BitBufView, BitVectorView, EliasFanoView, PackedVecView, U16sView, U64sView, WaveletMatrixView,
};
use crate::wavelet::WaveletMatrix;

/// Error decoding a wire buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the declared payload.
    Truncated,
    /// A declared length or invariant is inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A sequential reader over a wire buffer.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current byte position from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Borrows the next `n` raw bytes without copying.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let v = u64::from_le_bytes(self.data[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// Reads a `u64` and checks it fits a `usize`.
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Corrupt("length exceeds usize"))
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        if self.pos >= self.data.len() {
            return Err(WireError::Truncated);
        }
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Borrows a length-prefixed `u64` sequence without copying.
    pub fn u64s_ref(&mut self) -> Result<U64sView<'a>, WireError> {
        let n = self.read_len()?;
        let bytes = n.checked_mul(8).ok_or(WireError::Truncated)?;
        Ok(U64sView::new(self.take(bytes)?))
    }

    /// Borrows a length-prefixed `u16` sequence without copying.
    pub fn u16s_ref(&mut self) -> Result<U16sView<'a>, WireError> {
        let n = self.read_len()?;
        let bytes = n.checked_mul(2).ok_or(WireError::Truncated)?;
        Ok(U16sView::new(self.take(bytes)?))
    }

    /// Reads a length-prefixed `Vec<u64>` (one copy of the borrowed bytes).
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        Ok(self.u64s_ref()?.to_vec())
    }

    /// Borrows a length-prefixed byte slice without copying.
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.read_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed byte vector (one copy of the borrowed bytes).
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    /// Whether everything was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Append-only writer matching [`WireReader`].
#[derive(Default)]
pub struct WireWriter {
    out: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes a length-prefixed `u16` slice (little-endian pairs).
    pub fn u16_slice(&mut self, v: &[u16]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.out
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.out.extend_from_slice(v);
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Types that can be persisted with the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `w`.
    fn write(&self, w: &mut WireWriter);

    /// Decodes an instance, consuming from `r`.
    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes to a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// Convenience: decodes from a byte slice, requiring full consumption.
    fn from_wire_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let v = Self::read(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

impl Wire for BitBuf {
    fn write(&self, w: &mut WireWriter) {
        w.u64(self.len() as u64);
        w.u64_slice(self.words());
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Borrowed parse, then the single materialising copy.
        Ok(BitBufView::read(r)?.to_bitbuf())
    }
}

impl Wire for BitVector {
    fn write(&self, w: &mut WireWriter) {
        // The rank/select directories are persisted alongside the payload so
        // the zero-copy views can answer rank/select without the O(n)
        // directory rebuild an owned load performs.
        w.u64(self.len() as u64);
        w.u64_slice(self.words());
        w.u64_slice(self.block_rank_slice());
        w.u16_slice(self.sub_rank_slice());
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Borrowed parse, then one materialising copy; `to_bitvector`
        // rebuilds the directories from the payload and rejects the input if
        // the persisted ones disagree.
        BitVectorView::read(r)?.to_bitvector()
    }
}

impl Wire for EliasFano {
    fn write(&self, w: &mut WireWriter) {
        // Re-encoding from values would be wasteful; persist components.
        let (high, low, low_bits, len, universe) = self.raw_parts();
        w.u64(len as u64);
        w.u64(universe);
        w.u64(low_bits as u64);
        high.write(w);
        low.write(w);
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        EliasFanoView::read(r)?.to_elias_fano()
    }
}

impl Wire for PackedVec {
    fn write(&self, w: &mut WireWriter) {
        w.u64(self.len() as u64);
        w.u64(self.width() as u64);
        self.raw_buf().write(w);
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PackedVecView::read(r)?.to_packed_vec())
    }
}

impl Wire for WaveletMatrix {
    fn write(&self, w: &mut WireWriter) {
        let (levels, zeros, len, bits) = self.raw_parts();
        w.u64(len as u64);
        w.u64(bits as u64);
        w.u64_slice(&zeros.iter().map(|&z| z as u64).collect::<Vec<_>>());
        w.u64(levels.len() as u64);
        for l in levels {
            l.write(w);
        }
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        WaveletMatrixView::read(r)?.to_wavelet_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn corrupt_check<T: Wire + std::fmt::Debug>(bytes: &[u8]) {
        // Every truncation must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(T::from_wire_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Trailing garbage must be rejected.
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(T::from_wire_bytes(&extended).is_err());
    }

    #[test]
    fn bitbuf_roundtrip_and_corruption() {
        let mut b = BitBuf::new();
        for i in 0..100u64 {
            b.push_bits(i % 32, 5);
        }
        let bytes = b.to_wire_bytes();
        let back = BitBuf::from_wire_bytes(&bytes).unwrap();
        assert_eq!(b, back);
        corrupt_check::<BitBuf>(&bytes);
    }

    #[test]
    fn bitvector_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let bits: Vec<bool> = (0..3000).map(|_| rng.random_bool(0.4)).collect();
        let bv = BitVector::from_bools(&bits);
        let back = BitVector::from_wire_bytes(&bv.to_wire_bytes()).unwrap();
        assert_eq!(back.len(), bv.len());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(back.get(i), b);
            assert_eq!(back.rank1(i), bv.rank1(i));
        }
        corrupt_check::<BitVector>(&bv.to_wire_bytes());
    }

    #[test]
    fn elias_fano_roundtrip() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 37 + i % 5).collect();
        let ef = EliasFano::new(&values);
        let back = EliasFano::from_wire_bytes(&ef.to_wire_bytes()).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(back.get(i), v);
        }
        assert_eq!(back.rank_leq(1000), ef.rank_leq(1000));
        corrupt_check::<EliasFano>(&ef.to_wire_bytes());
    }

    #[test]
    fn packed_roundtrip() {
        let values: Vec<u64> = (0..300).map(|i| i * 7 % 1000).collect();
        let p = PackedVec::new(&values);
        let back = PackedVec::from_wire_bytes(&p.to_wire_bytes()).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(back.get(i), v);
        }
        corrupt_check::<PackedVec>(&p.to_wire_bytes());
    }

    #[test]
    fn wavelet_roundtrip() {
        let symbols: Vec<u8> = (0..400).map(|i| (i % 7) as u8).collect();
        let wm = WaveletMatrix::new(&symbols);
        let back = WaveletMatrix::from_wire_bytes(&wm.to_wire_bytes()).unwrap();
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(back.access(i), s);
            assert_eq!(back.rank(s, i), wm.rank(s, i));
        }
        corrupt_check::<WaveletMatrix>(&wm.to_wire_bytes());
    }

    #[test]
    fn empty_structures_roundtrip() {
        assert_eq!(BitBuf::from_wire_bytes(&BitBuf::new().to_wire_bytes()).unwrap(), BitBuf::new());
        let ef = EliasFano::new(&[]);
        assert_eq!(EliasFano::from_wire_bytes(&ef.to_wire_bytes()).unwrap().len(), 0);
        let wm = WaveletMatrix::new(&[]);
        assert_eq!(WaveletMatrix::from_wire_bytes(&wm.to_wire_bytes()).unwrap().len(), 0);
    }

    #[test]
    fn reader_primitives() {
        let mut w = WireWriter::new();
        w.u64(42);
        w.u8(7);
        w.i64(-5);
        w.bytes(b"hello");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.is_exhausted());
        assert_eq!(r.u64(), Err(WireError::Truncated));
    }
}
