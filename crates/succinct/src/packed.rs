//! Fixed-width packed integer vectors.
//!
//! The NeaTS layout stores the per-fragment correction bit widths `B` and the
//! per-kind parameter arrays `P_f` in "cells whose bit size is just enough to
//! contain the largest value stored in them" (paper §III-C). [`PackedVec`]
//! implements exactly that: `w = bits_for(max)` bits per element with O(1)
//! random access.

use crate::bits::{bits_for, BitBuf};

/// An immutable vector of `len` integers, each stored in `width` bits.
#[derive(Clone, Debug)]
pub struct PackedVec {
    buf: BitBuf,
    width: usize,
    len: usize,
}

impl PackedVec {
    /// Packs `values` using the minimum width for the largest value.
    pub fn new(values: &[u64]) -> Self {
        let width = values.iter().copied().max().map_or(0, bits_for);
        Self::with_width(values, width)
    }

    /// Packs `values` with an explicit `width` (each value must fit).
    pub fn with_width(values: &[u64], width: usize) -> Self {
        let mut buf = BitBuf::with_capacity(values.len() * width);
        for &v in values {
            debug_assert!(width == 64 || v < (1u64 << width.max(1)) || width == 0 && v == 0);
            buf.push_bits(v, width);
        }
        Self { buf, width, len: values.len() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per element.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The `i`-th element.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.buf.get_bits(i * self.width, self.width)
    }

    /// Heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.buf.size_in_bytes()
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The underlying bit buffer, for persistence.
    pub fn raw_buf(&self) -> &BitBuf {
        &self.buf
    }

    /// Rebuilds from a persisted buffer; the caller must ensure
    /// `buf.len() == len * width`.
    pub fn from_raw_parts(buf: BitBuf, width: usize, len: usize) -> Self {
        debug_assert_eq!(buf.len(), len * width);
        Self { buf, width, len }
    }
}

/// A packed vector of signed integers stored with a zig-zag transform.
#[derive(Clone, Debug)]
pub struct PackedIVec {
    inner: PackedVec,
}

impl PackedIVec {
    /// Packs signed `values` via zig-zag encoding at minimum width.
    pub fn new(values: &[i64]) -> Self {
        let zz: Vec<u64> = values.iter().map(|&v| zigzag_encode(v)).collect();
        Self { inner: PackedVec::new(&zz) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The `i`-th element.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        zigzag_decode(self.inner.get(i))
    }

    /// Heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.inner.size_in_bytes()
    }
}

/// Maps signed to unsigned preserving magnitude order: 0,-1,1,-2,2 → 0,1,2,3,4.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_vec() {
        let p = PackedVec::new(&[]);
        assert_eq!(p.len(), 0);
        assert_eq!(p.width(), 0);
        assert_eq!(p.size_in_bytes(), 0);
    }

    #[test]
    fn zero_width_all_zeros() {
        let p = PackedVec::new(&[0, 0, 0]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.get(1), 0);
        assert_eq!(p.size_in_bytes(), 0);
    }

    #[test]
    fn roundtrip_various_widths() {
        let mut rng = StdRng::seed_from_u64(11);
        for &max in &[1u64, 2, 255, 256, 65_535, 1 << 33, u64::MAX] {
            let values: Vec<u64> =
                (0..200).map(|_| rng.random_range(0..=max)).chain([max]).collect();
            let p = PackedVec::new(&values);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(p.get(i), v, "max={max} i={i}");
            }
        }
    }

    #[test]
    fn width_is_minimal() {
        assert_eq!(PackedVec::new(&[7]).width(), 3);
        assert_eq!(PackedVec::new(&[8]).width(), 4);
        assert_eq!(PackedVec::new(&[1]).width(), 1);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn signed_roundtrip() {
        let values: Vec<i64> = vec![-5, 3, 0, -100, 100, i64::MIN / 2];
        let p = PackedIVec::new(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn iter_matches_get() {
        let values: Vec<u64> = (0..97).map(|i| i * 13 % 101).collect();
        let p = PackedVec::new(&values);
        let collected: Vec<u64> = p.iter().collect();
        assert_eq!(collected, values);
    }
}
