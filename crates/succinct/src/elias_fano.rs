//! Elias-Fano encoding of monotone non-decreasing integer sequences.
//!
//! Used by the NeaTS layout (paper §III-C) for the fragment-start array `S`
//! and the cumulative-correction-offset array `O`. Supports O(1) `get` via
//! `select1` on the upper-bits bitvector, and `rank_leq` (the paper's
//! `S.rank(k)`) in O(min(log m, log n/m)) via a bucket lookup with `select0`
//! followed by a binary search within the bucket.

use crate::bits::{bits_for, BitBuf};
use crate::bitvec::BitVector;

/// An Elias-Fano-coded monotone sequence.
#[derive(Clone, Debug)]
pub struct EliasFano {
    /// Unary-coded high parts: for element i with high part h, bit
    /// `i + h` is set; zeros delimit buckets.
    high: BitVector,
    /// Packed low parts, `low_bits` each.
    low: BitBuf,
    low_bits: usize,
    len: usize,
    universe: u64,
}

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing.
    ///
    /// # Panics
    /// Panics if the sequence is decreasing.
    pub fn new(values: &[u64]) -> Self {
        let len = values.len();
        let universe = values.last().copied().map_or(0, |v| v + 1);
        let low_bits = if len == 0 {
            0
        } else {
            // ⌊log₂(u/m)⌋, clamped to ≥ 0
            let per = universe / len as u64;
            if per <= 1 { 0 } else { bits_for(per) - 1 }
        };
        let low_mask = if low_bits == 0 { 0 } else { (1u64 << low_bits) - 1 };
        let mut low = BitBuf::with_capacity(len * low_bits);
        let n_high_bits = len + (universe >> low_bits) as usize + 1;
        let mut high = BitBuf::with_capacity(n_high_bits);
        let mut prev = 0u64;
        let mut high_pos = 0usize; // number of bits pushed to `high`
        for (i, &v) in values.iter().enumerate() {
            assert!(v >= prev, "EliasFano input must be non-decreasing");
            prev = v;
            low.push_bits(v & low_mask, low_bits);
            let h = (v >> low_bits) as usize;
            let target = i + h; // position of the set bit for element i
            while high_pos < target {
                high.push_bit(false);
                high_pos += 1;
            }
            high.push_bit(true);
            high_pos += 1;
        }
        // Trailing zeros so select0 is defined for every bucket.
        while high_pos < n_high_bits {
            high.push_bit(false);
            high_pos += 1;
        }
        Self { high: BitVector::from_bitbuf(&high), low, low_bits, len, universe }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th element (0-based). O(1).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let pos = self.high.select1(i).expect("index in range");
        let h = (pos - i) as u64;
        (h << self.low_bits) | self.low.get_bits(i * self.low_bits, self.low_bits)
    }

    /// Number of elements ≤ `x` (the paper's `rank` operation on `S`).
    pub fn rank_leq(&self, x: u64) -> usize {
        if self.len == 0 || self.universe == 0 {
            return 0;
        }
        if x >= self.universe - 1 {
            return self.len;
        }
        let h = (x >> self.low_bits) as usize;
        // Elements with high part < h: all elements before bucket h.
        let start = if h == 0 {
            0
        } else {
            match self.high.select0(h - 1) {
                Some(p) => p - (h - 1),
                None => return self.len,
            }
        };
        // Elements with high part ≤ h end before the h-th zero.
        let end = match self.high.select0(h) {
            Some(p) => p - h,
            None => self.len,
        };
        // Binary search within bucket h over the low parts.
        let xl = x & if self.low_bits == 0 { 0 } else { (1u64 << self.low_bits) - 1 };
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let l = self.low.get_bits(mid * self.low_bits, self.low_bits);
            if l <= xl {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the last element ≤ `x`, i.e. the predecessor. `None` if all
    /// elements are > `x`.
    pub fn predecessor_index(&self, x: u64) -> Option<usize> {
        let r = self.rank_leq(x);
        if r == 0 {
            None
        } else {
            Some(r - 1)
        }
    }

    /// Heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.high.size_in_bytes() + self.low.size_in_bytes()
    }

    /// Exposes the internal components for persistence
    /// (`(high, low, low_bits, len, universe)`).
    pub fn raw_parts(&self) -> (&BitVector, &BitBuf, usize, usize, u64) {
        (&self.high, &self.low, self.low_bits, self.len, self.universe)
    }

    /// Rebuilds from persisted components, validating basic invariants.
    /// Returns `None` on inconsistent parts.
    pub fn from_raw_parts(
        high: BitVector,
        low: BitBuf,
        low_bits: usize,
        len: usize,
        universe: u64,
    ) -> Option<Self> {
        if low.len() != len * low_bits || high.count_ones() != len {
            return None;
        }
        Some(Self { high, low, low_bits, len, universe })
    }

    /// Streaming iterator over the elements in order.
    ///
    /// A single forward scan of the high-bits words with a running low-bits
    /// cursor — O(len + high_words) for the full walk — instead of an O(1)
    /// but directory-probing `select1` per element. Sequential decompression
    /// walks the fragment `starts`/`offsets` arrays this way.
    pub fn iter(&self) -> EliasFanoIter<'_> {
        EliasFanoIter { ef: self, i: 0, ones: self.high.iter_ones() }
    }
}

/// Streaming iterator over an [`EliasFano`] sequence (see
/// [`EliasFano::iter`]).
#[derive(Clone, Debug)]
pub struct EliasFanoIter<'a> {
    ef: &'a EliasFano,
    /// Next element index.
    i: usize,
    /// Forward scan over the unary-coded high parts.
    ones: crate::bitvec::OnesIter<'a>,
}

impl Iterator for EliasFanoIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.i == self.ef.len {
            return None;
        }
        let pos = self.ones.next().expect("high bits hold one set bit per element");
        let h = (pos - self.i) as u64;
        let lb = self.ef.low_bits;
        let v = (h << lb) | self.ef.low.get_bits(self.i * lb, lb);
        self.i += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ef.len - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for EliasFanoIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check(values: &[u64]) {
        let ef = EliasFano::new(values);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        // The streaming iterator yields exactly the encoded sequence.
        let streamed: Vec<u64> = ef.iter().collect();
        assert_eq!(streamed, values);
        assert_eq!(ef.iter().len(), values.len());
        let max = values.last().copied().unwrap_or(0);
        for x in 0..=max.min(2000) {
            let expected = values.iter().filter(|&&v| v <= x).count();
            assert_eq!(ef.rank_leq(x), expected, "rank_leq({x})");
        }
        assert_eq!(ef.rank_leq(max + 100), values.len());
    }

    #[test]
    fn empty() {
        let ef = EliasFano::new(&[]);
        assert_eq!(ef.len(), 0);
        assert_eq!(ef.rank_leq(0), 0);
        assert_eq!(ef.predecessor_index(5), None);
    }

    #[test]
    fn single_element() {
        check(&[0]);
        check(&[7]);
        check(&[1000]);
    }

    #[test]
    fn small_sequences() {
        check(&[0, 1, 2, 3, 4]);
        check(&[1, 5, 5, 5, 9]); // duplicates allowed
        check(&[0, 0, 0]);
        check(&[2, 100, 1000, 1001]);
    }

    #[test]
    fn dense_and_sparse() {
        let dense: Vec<u64> = (0..1000).collect();
        check(&dense);
        let sparse: Vec<u64> = (0..100).map(|i| i * 10_007).collect();
        check(&sparse);
    }

    #[test]
    fn random_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.random_range(1..500);
            let mut v = 0u64;
            let values: Vec<u64> = (0..n)
                .map(|_| {
                    v += rng.random_range(0..50);
                    v
                })
                .collect();
            check(&values);
        }
    }

    #[test]
    fn predecessor() {
        let ef = EliasFano::new(&[10, 20, 30]);
        assert_eq!(ef.predecessor_index(5), None);
        assert_eq!(ef.predecessor_index(10), Some(0));
        assert_eq!(ef.predecessor_index(19), Some(0));
        assert_eq!(ef.predecessor_index(20), Some(1));
        assert_eq!(ef.predecessor_index(1000), Some(2));
    }

    #[test]
    fn large_universe() {
        let values: Vec<u64> = vec![1 << 40, (1 << 40) + 1, 1 << 50];
        let ef = EliasFano::new(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v);
        }
        assert_eq!(ef.rank_leq(1 << 45), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing() {
        EliasFano::new(&[5, 3]);
    }

    #[test]
    fn space_is_compact() {
        // ~2 + log(u/m) bits per element expected.
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 17).collect();
        let ef = EliasFano::new(&values);
        let bits_per_elem = ef.size_in_bytes() as f64 * 8.0 / 10_000.0;
        assert!(bits_per_elem < 12.0, "got {bits_per_elem} bits/elem");
    }
}
