//! Wavelet matrix over a small integer alphabet.
//!
//! The NeaTS layout regards the function-kind array `K` as a string over the
//! alphabet `{0, …, |F|−1}` and needs `access(i)` and `rank_c(i)` in
//! O(log |F|) time (paper §III-C). We implement the *wavelet matrix* variant
//! (Claude, Navarro, Ordóñez 2015), which is simpler than the pointer-based
//! wavelet tree and has identical asymptotics.

use crate::bits::bits_for;
use crate::bitvec::BitVector;

/// A wavelet matrix supporting `access` and `rank_c` over `u8` symbols.
#[derive(Clone, Debug)]
pub struct WaveletMatrix {
    levels: Vec<BitVector>,
    /// Number of zeros at each level.
    zeros: Vec<usize>,
    len: usize,
    bits: usize,
}

impl WaveletMatrix {
    /// Builds from a symbol sequence. The alphabet size is inferred from the
    /// maximum symbol.
    pub fn new(symbols: &[u8]) -> Self {
        let len = symbols.len();
        let max = symbols.iter().copied().max().unwrap_or(0);
        let bits = bits_for(max as u64).max(1);
        let mut levels = Vec::with_capacity(bits);
        let mut zeros = Vec::with_capacity(bits);
        let mut cur: Vec<u8> = symbols.to_vec();
        for level in 0..bits {
            let shift = bits - 1 - level;
            let lvl_bits: Vec<bool> = cur.iter().map(|&s| (s >> shift) & 1 == 1).collect();
            let bv = BitVector::from_bools(&lvl_bits);
            zeros.push(bv.count_zeros());
            // Stable partition: zeros first, then ones.
            let mut next = Vec::with_capacity(len);
            next.extend(cur.iter().copied().filter(|&s| (s >> shift) & 1 == 0));
            next.extend(cur.iter().copied().filter(|&s| (s >> shift) & 1 == 1));
            cur = next;
            levels.push(bv);
        }
        Self { levels, zeros, len, bits }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at position `i`.
    pub fn access(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let mut i = i;
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(i);
            sym = (sym << 1) | bit as u8;
            i = if bit { self.zeros[level] + bv.rank1(i) } else { bv.rank0(i) };
        }
        sym
    }

    /// Combined `access(i)` and `rank(access(i), i)` in a single traversal.
    ///
    /// Tracking the bucket start alongside the position yields the rank for
    /// free: at each level both indices are mapped by the same rank
    /// transform, and at the leaf their difference is the number of earlier
    /// occurrences of the symbol. This halves the work of the NeaTS random
    /// access hot path (Algorithm 3 needs both the kind and its rank).
    pub fn access_rank(&self, i: usize) -> (u8, usize) {
        debug_assert!(i < self.len);
        let mut pos = i;
        let mut bucket = 0usize; // start of the symbol's bucket at this level
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(pos);
            sym = (sym << 1) | bit as u8;
            if bit {
                pos = self.zeros[level] + bv.rank1(pos);
                bucket = self.zeros[level] + bv.rank1(bucket);
            } else {
                pos = bv.rank0(pos);
                bucket = bv.rank0(bucket);
            }
        }
        (sym, pos - bucket)
    }

    /// Number of occurrences of `sym` in the prefix of length `pos`
    /// (the paper's `K.rank_f(i)` with `pos = i`).
    pub fn rank(&self, sym: u8, pos: usize) -> usize {
        debug_assert!(pos <= self.len);
        if (sym as u64) >> self.bits != 0 {
            return 0; // symbol wider than the matrix: cannot occur
        }
        let mut s = 0usize;
        let mut e = pos;
        for (level, bv) in self.levels.iter().enumerate() {
            let shift = self.bits - 1 - level;
            if (sym >> shift) & 1 == 0 {
                s = bv.rank0(s);
                e = bv.rank0(e);
            } else {
                s = self.zeros[level] + bv.rank1(s);
                e = self.zeros[level] + bv.rank1(e);
            }
        }
        e - s
    }

    /// Heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.size_in_bytes()).sum::<usize>() + self.zeros.len() * 8
    }

    /// Exposes the internal components for persistence
    /// (`(levels, zeros, len, bits)`).
    pub fn raw_parts(&self) -> (&[BitVector], &[usize], usize, usize) {
        (&self.levels, &self.zeros, self.len, self.bits)
    }

    /// Rebuilds from persisted components, validating level consistency.
    pub fn from_raw_parts(
        levels: Vec<BitVector>,
        zeros: Vec<usize>,
        len: usize,
        bits: usize,
    ) -> Option<Self> {
        if levels.len() != bits || zeros.len() != bits {
            return None;
        }
        for (l, &z) in levels.iter().zip(&zeros) {
            if l.len() != len || l.count_zeros() != z {
                return None;
            }
        }
        Some(Self { levels, zeros, len, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check(symbols: &[u8]) {
        let wm = WaveletMatrix::new(symbols);
        assert_eq!(wm.len(), symbols.len());
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(wm.access(i), s, "access({i})");
        }
        let max = symbols.iter().copied().max().unwrap_or(0);
        for sym in 0..=max {
            for pos in 0..=symbols.len() {
                let expected = symbols[..pos].iter().filter(|&&s| s == sym).count();
                assert_eq!(wm.rank(sym, pos), expected, "rank({sym}, {pos})");
            }
        }
    }

    #[test]
    fn empty() {
        let wm = WaveletMatrix::new(&[]);
        assert_eq!(wm.len(), 0);
        assert_eq!(wm.rank(0, 0), 0);
    }

    #[test]
    fn single_symbol_alphabet() {
        check(&[0, 0, 0, 0]);
    }

    #[test]
    fn binary_alphabet() {
        check(&[0, 1, 1, 0, 1, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn four_kinds_like_neats() {
        // NeaTS uses 4 function kinds (linear, exponential, quadratic, radical).
        check(&[0, 1, 2, 3, 2, 1, 0, 3, 3, 0, 2, 2, 1]);
    }

    #[test]
    fn non_power_of_two_alphabet() {
        check(&[0, 1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1, 0, 6, 6]);
    }

    #[test]
    fn random_sequences() {
        let mut rng = StdRng::seed_from_u64(17);
        for &sigma in &[2u8, 3, 4, 9, 16] {
            let symbols: Vec<u8> = (0..300).map(|_| rng.random_range(0..sigma)).collect();
            check(&symbols);
        }
    }

    #[test]
    fn access_rank_matches_separate_calls() {
        let mut rng = StdRng::seed_from_u64(23);
        for &sigma in &[2u8, 4, 7, 11] {
            let symbols: Vec<u8> = (0..500).map(|_| rng.random_range(0..sigma)).collect();
            let wm = WaveletMatrix::new(&symbols);
            for i in 0..symbols.len() {
                let (sym, rank) = wm.access_rank(i);
                assert_eq!(sym, wm.access(i), "sym at {i}");
                assert_eq!(rank, wm.rank(sym, i), "rank at {i}");
            }
        }
    }

    #[test]
    fn rank_at_full_length_counts_all() {
        let symbols = vec![1u8, 2, 1, 1, 3];
        let wm = WaveletMatrix::new(&symbols);
        assert_eq!(wm.rank(1, 5), 3);
        assert_eq!(wm.rank(2, 5), 1);
        assert_eq!(wm.rank(3, 5), 1);
        assert_eq!(wm.rank(0, 5), 0);
    }
}
