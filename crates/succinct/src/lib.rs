//! # succinct — compact data structures for the NeaTS layout
//!
//! This crate provides the succinct-data-structure substrate that the paper
//! takes from the `sdsl` and `sux` C++ libraries (§IV-A), re-implemented from
//! scratch in safe Rust:
//!
//! * [`bits::BitBuf`] — append-only, randomly-readable bit buffer (the
//!   corrections stream `C`).
//! * [`bitvec::BitVector`] — plain bitvector with constant-time `rank` and
//!   sampled `select` (rank9-style directory).
//! * [`elias_fano::EliasFano`] — monotone sequences with O(1) `get` and fast
//!   `rank_leq` (the arrays `S` and `O`).
//! * [`packed::PackedVec`] / [`packed::PackedIVec`] — fixed-width packed
//!   integer vectors (the array `B`, parameter arrays).
//! * [`wavelet::WaveletMatrix`] — `access`/`rank_c` over small alphabets
//!   (the function-kind string `K`).

#![warn(missing_docs)]
pub mod bits;
pub mod bitvec;
pub mod elias_fano;
pub mod packed;
pub mod wavelet;
pub mod wire;

pub use bits::{bits_for, bits_for_residual_bound, BitBuf};
pub use bitvec::{BitVector, OnesIter};
pub use elias_fano::{EliasFano, EliasFanoIter};
pub use packed::{zigzag_decode, zigzag_encode, PackedIVec, PackedVec};
pub use wavelet::WaveletMatrix;
pub use wire::{Wire, WireError, WireReader, WireWriter};
