//! # succinct — compact data structures for the NeaTS layout
//!
//! This crate provides the succinct-data-structure substrate that the paper
//! takes from the `sdsl` and `sux` C++ libraries (§IV-A), re-implemented from
//! scratch in safe Rust:
//!
//! * [`bits::BitBuf`] — append-only, randomly-readable bit buffer (the
//!   corrections stream `C`).
//! * [`bitvec::BitVector`] — plain bitvector with constant-time `rank` and
//!   sampled `select` (rank9-style directory).
//! * [`elias_fano::EliasFano`] — monotone sequences with O(1) `get` and fast
//!   `rank_leq` (the arrays `S` and `O`).
//! * [`packed::PackedVec`] / [`packed::PackedIVec`] — fixed-width packed
//!   integer vectors (the array `B`, parameter arrays).
//! * [`wavelet::WaveletMatrix`] — `access`/`rank_c` over small alphabets
//!   (the function-kind string `K`).
//! * [`views`] — borrowed, zero-copy counterparts of all of the above that
//!   answer queries straight from serialized bytes (the `ArchiveView` read
//!   path in `neats-core`).
//! * [`crc`] — the CRC-64 used by the archive container frame.

#![warn(missing_docs)]
pub mod bits;
pub mod bitvec;
pub mod crc;
pub mod elias_fano;
pub mod packed;
pub mod views;
pub mod wavelet;
pub mod wire;

pub use bits::{bits_for, bits_for_residual_bound, BitBuf};
pub use bitvec::{BitVector, OnesIter};
pub use crc::{crc64, Crc64};
pub use elias_fano::{EliasFano, EliasFanoIter};
pub use packed::{zigzag_decode, zigzag_encode, PackedIVec, PackedVec};
pub use views::{
    BitBufView, BitVectorView, EliasFanoIterView, EliasFanoView, OnesIterView, PackedVecView,
    U16sView, U64sView, WaveletMatrixView,
};
pub use wavelet::WaveletMatrix;
pub use wire::{Wire, WireError, WireReader, WireWriter};
