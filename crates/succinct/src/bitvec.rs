//! Plain bitvector with constant-time rank and directory-guided select.
//!
//! Rank uses an interleaved two-level directory in the style of `rank9`
//! (Vigna, WEA 2008): absolute counts every 512 bits plus 9-bit relative
//! counts every 64 bits. Select reuses the same directory — a binary search
//! over superblock counts, a ≤8-entry scan of the relative counts, and a
//! single in-word select — so it needs no extra space and touches at most
//! three cache lines, which is what the NeaTS random-access path (one
//! `rank` on `S` plus wavelet-matrix traversals) cares about.

use crate::bits::BitBuf;

const WORDS_PER_BLOCK: usize = 8; // 512-bit superblocks

/// An immutable bitvector supporting `rank1`, `rank0`, `select1`, `select0`.
#[derive(Clone, Debug)]
pub struct BitVector {
    words: Vec<u64>,
    len: usize,
    /// `block_rank[i]` = number of ones before bit `i * 512`.
    block_rank: Vec<u64>,
    /// `sub_rank[i]` = ones in the superblock of word `i` before word `i`,
    /// relative to the superblock start (fits in 9 bits; stored flat).
    sub_rank: Vec<u16>,
    ones: usize,
}

impl BitVector {
    /// Builds from a [`BitBuf`].
    pub fn from_bitbuf(buf: &BitBuf) -> Self {
        Self::from_words(buf.words().to_vec(), buf.len())
    }

    /// Builds from a boolean slice (test/convenience constructor).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut buf = BitBuf::with_capacity(bits.len());
        for &b in bits {
            buf.push_bit(b);
        }
        Self::from_bitbuf(&buf)
    }

    /// Builds from raw words and a bit length. Bits beyond `len` are masked.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(len <= words.len() * 64);
        words.truncate(len.div_ceil(64));
        // Mask garbage in the last word so popcounts are exact.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        let n_words = words.len();
        let n_blocks = n_words.div_ceil(WORDS_PER_BLOCK).max(1);
        let mut block_rank = Vec::with_capacity(n_blocks + 1);
        let mut sub_rank = vec![0u16; n_words];
        let mut total: u64 = 0;
        for (w, &word) in words.iter().enumerate() {
            if w % WORDS_PER_BLOCK == 0 {
                block_rank.push(total);
            }
            sub_rank[w] = (total - block_rank[w / WORDS_PER_BLOCK]) as u16;
            total += word.count_ones() as u64;
        }
        block_rank.push(total);
        let ones = total as usize;
        Self { words, len, block_rank, sub_rank, ones }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitvector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of one bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// The bit at position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Number of ones strictly before `pos`. `pos` may equal `len`.
    #[inline]
    pub fn rank1(&self, pos: usize) -> usize {
        debug_assert!(pos <= self.len);
        if pos == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        if word == self.words.len() {
            return self.ones;
        }
        let base = self.block_rank[word / WORDS_PER_BLOCK] as usize + self.sub_rank[word] as usize;
        let partial = if bit == 0 { 0 } else { (self.words[word] & ((1u64 << bit) - 1)).count_ones() as usize };
        base + partial
    }

    /// Number of zeros strictly before `pos`.
    #[inline]
    pub fn rank0(&self, pos: usize) -> usize {
        pos - self.rank1(pos)
    }

    /// Position of the `k`-th one (0-based). Returns `None` if `k >= count_ones()`.
    ///
    /// Binary search over the rank directory (superblocks, then the ≤8
    /// relative counts of one superblock, then one word): O(log n) probes
    /// touching at most three cache lines, with a sampled starting hint.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Superblock: largest blk with block_rank[blk] ≤ k.
        let blk = self.block_rank.partition_point(|&r| r as usize <= k) - 1;
        // Word within the superblock via the u16 relative counts.
        let base = self.block_rank[blk] as usize;
        let rel = k - base;
        let w_lo = blk * WORDS_PER_BLOCK;
        let w_hi = (w_lo + WORDS_PER_BLOCK).min(self.words.len());
        let mut w = w_lo;
        for cand in (w_lo + 1)..w_hi {
            if (self.sub_rank[cand] as usize) <= rel {
                w = cand;
            } else {
                break;
            }
        }
        let count = base + self.sub_rank[w] as usize;
        Some(w * 64 + select_in_word(self.words[w], k - count))
    }

    /// Position of the `k`-th zero (0-based). Returns `None` if `k >= count_zeros()`.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.len - self.ones {
            return None;
        }
        // zeros before superblock blk = blk·512 − block_rank[blk]; manual
        // binary search since the key is derived, not stored.
        let mut lo = 0usize;
        let mut hi = self.block_rank.len() - 1; // block_rank has n_blocks+1 entries
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let zeros_before = (mid * WORDS_PER_BLOCK * 64).min(self.len) - self.block_rank[mid] as usize;
            if zeros_before <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let blk = lo;
        let base = (blk * WORDS_PER_BLOCK * 64).min(self.len) - self.block_rank[blk] as usize;
        let rel = k - base;
        let w_lo = blk * WORDS_PER_BLOCK;
        let w_hi = (w_lo + WORDS_PER_BLOCK).min(self.words.len());
        let mut w = w_lo;
        for cand in (w_lo + 1)..w_hi {
            let zeros_in_prefix = (cand - w_lo) * 64 - self.sub_rank[cand] as usize;
            if zeros_in_prefix <= rel {
                w = cand;
            } else {
                break;
            }
        }
        let count = base + (w - w_lo) * 64 - self.sub_rank[w] as usize;
        Some(w * 64 + select_in_word(!self.words[w], k - count))
    }

    /// The raw payload words (for persistence; directories are rebuilt on
    /// load).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The superblock rank directory (one absolute count per 512 bits, plus
    /// the total), persisted so zero-copy views can rank without a rebuild.
    pub(crate) fn block_rank_slice(&self) -> &[u64] {
        &self.block_rank
    }

    /// The per-word relative rank directory (see [`Self::block_rank_slice`]).
    pub(crate) fn sub_rank_slice(&self) -> &[u16] {
        &self.sub_rank
    }

    /// Streaming iterator over the positions of all set bits, in order.
    ///
    /// A single forward scan of the payload words — O(len/64 + ones) for the
    /// whole walk with no directory probes, versus `select1` per element
    /// (a binary search each). Use for sequential decompression-style walks.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter { words: &self.words, word_idx: 0, cur: self.words.first().copied().unwrap_or(0), remaining: self.ones }
    }

    /// Heap size of the structure in bytes (payload + directories).
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
            + self.block_rank.len() * 8
            + self.sub_rank.len() * 2
    }
}

/// Streaming iterator over set-bit positions (see [`BitVector::iter_ones`]).
#[derive(Clone, Debug)]
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    /// Unconsumed set bits of `words[word_idx]`.
    cur: u64,
    remaining: usize,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        while self.cur == 0 {
            self.word_idx += 1;
            self.cur = self.words[self.word_idx];
        }
        let pos = self.word_idx * 64 + self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        self.remaining -= 1;
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OnesIter<'_> {}

/// `select_in_byte[k * 256 + b]` = position of the `(k+1)`-th set bit of
/// byte `b` (0 when `b` has fewer than `k+1` set bits — callers guarantee
/// the rank is in range). 2 KiB, built at compile time.
static SELECT_IN_BYTE: [u8; 2048] = build_select_in_byte();

const fn build_select_in_byte() -> [u8; 2048] {
    let mut table = [0u8; 2048];
    let mut k = 0;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let mut seen = 0;
            let mut bit = 0;
            while bit < 8 {
                if (b >> bit) & 1 == 1 {
                    if seen == k {
                        table[k * 256 + b] = bit as u8;
                        break;
                    }
                    seen += 1;
                }
                bit += 1;
            }
            b += 1;
        }
        k += 1;
    }
    table
}

/// Position (0-based) of the `k`-th set bit within `word`. `k` must be less
/// than `word.count_ones()`.
///
/// Branchless broadword select (Vigna, WEA 2008 §4): SWAR byte-wise
/// popcounts folded into per-byte inclusive prefix sums with one multiply,
/// a parallel `≤` comparison to locate the byte containing the answer, and
/// a 2 KiB table for the final in-byte select. Constant ~12 ops versus the
/// previous `O(k)` clear-lowest-bit loop (up to 63 iterations); this sits
/// under every `EliasFano::get` on the random-access path.
#[inline]
pub(crate) fn select_in_word(word: u64, k: usize) -> usize {
    debug_assert!(k < word.count_ones() as usize);
    const ONES: u64 = 0x0101_0101_0101_0101;
    const MSBS: u64 = 0x8080_8080_8080_8080;
    // Byte-wise popcounts (classic SWAR reduction)...
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    // ...turned into inclusive per-byte prefix sums by the ONES multiply.
    let prefix = s.wrapping_mul(ONES);
    // Per-byte "prefix ≤ k" flags: byte values are ≤ 64 and k ≤ 63, so the
    // subtraction borrows out of a byte's MSB exactly when prefix > k.
    let k_spread = (k as u64) * ONES;
    let leq = (((k_spread | MSBS) - prefix) & MSBS) >> 7;
    // Number of bytes fully before the target byte = sum of the 0/1 flags,
    // folded into the top byte by one more ONES multiply.
    let byte_idx = (leq.wrapping_mul(ONES) >> 56) as usize;
    // Ones before that byte: the previous byte's inclusive prefix (0 for
    // byte 0 — the `<< 8` shifts a zero byte into place).
    let bits_before = ((prefix << 8) >> (byte_idx * 8)) as usize & 0xFF;
    let byte = (word >> (byte_idx * 8)) as usize & 0xFF;
    byte_idx * 8 + SELECT_IN_BYTE[(k - bits_before) * 256 + byte] as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn naive_rank1(bits: &[bool], pos: usize) -> usize {
        bits[..pos].iter().filter(|&&b| b).count()
    }

    #[test]
    fn select_in_word_basic() {
        assert_eq!(select_in_word(0b1, 0), 0);
        assert_eq!(select_in_word(0b1010, 0), 1);
        assert_eq!(select_in_word(0b1010, 1), 3);
        assert_eq!(select_in_word(u64::MAX, 63), 63);
    }

    /// Reference implementation the SWAR version replaced.
    fn select_in_word_naive(mut word: u64, k: usize) -> usize {
        for _ in 0..k {
            word &= word - 1;
        }
        word.trailing_zeros() as usize
    }

    #[test]
    fn select_in_word_matches_naive() {
        // Structured edge words plus random ones, every valid rank.
        let mut words: Vec<u64> = vec![
            1,
            u64::MAX,
            1 << 63,
            (1 << 63) | 1,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0x8000_0000_0000_0001,
            0x00FF_00FF_00FF_00FF,
            0xFF00_0000_0000_0000,
        ];
        let mut rng = StdRng::seed_from_u64(1234);
        words.extend((0..2000).map(|_| rng.random::<u64>()));
        words.extend((0..500).map(|_| rng.random::<u64>() & rng.random::<u64>() & rng.random::<u64>()));
        for w in words {
            for k in 0..w.count_ones() as usize {
                assert_eq!(
                    select_in_word(w, k),
                    select_in_word_naive(w, k),
                    "word={w:#x} k={k}"
                );
            }
        }
    }

    #[test]
    fn rank_select_small() {
        let bits = [true, false, true, true, false, true];
        let bv = BitVector::from_bools(&bits);
        assert_eq!(bv.len(), 6);
        assert_eq!(bv.count_ones(), 4);
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.rank1(1), 1);
        assert_eq!(bv.rank1(6), 4);
        assert_eq!(bv.rank0(6), 2);
        assert_eq!(bv.select1(0), Some(0));
        assert_eq!(bv.select1(1), Some(2));
        assert_eq!(bv.select1(3), Some(5));
        assert_eq!(bv.select1(4), None);
        assert_eq!(bv.select0(0), Some(1));
        assert_eq!(bv.select0(1), Some(4));
        assert_eq!(bv.select0(2), None);
    }

    #[test]
    fn empty_bitvector() {
        let bv = BitVector::from_bools(&[]);
        assert_eq!(bv.len(), 0);
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.select1(0), None);
        assert_eq!(bv.select0(0), None);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = BitVector::from_bools(&vec![true; 1000]);
        for i in 0..=1000 {
            assert_eq!(ones.rank1(i), i);
        }
        for k in 0..1000 {
            assert_eq!(ones.select1(k), Some(k));
        }
        assert_eq!(ones.select0(0), None);

        let zeros = BitVector::from_bools(&vec![false; 1000]);
        assert_eq!(zeros.count_ones(), 0);
        for k in 0..1000 {
            assert_eq!(zeros.select0(k), Some(k));
        }
        assert_eq!(zeros.select1(0), None);
    }

    #[test]
    fn rank_matches_naive_random() {
        let mut rng = StdRng::seed_from_u64(42);
        for &n in &[1usize, 63, 64, 65, 511, 512, 513, 5000] {
            for &density in &[0.01f64, 0.5, 0.99] {
                let bits: Vec<bool> = (0..n).map(|_| rng.random_bool(density)).collect();
                let bv = BitVector::from_bools(&bits);
                for pos in 0..=n {
                    assert_eq!(bv.rank1(pos), naive_rank1(&bits, pos), "n={n} d={density} pos={pos}");
                }
            }
        }
    }

    #[test]
    fn select_matches_naive_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for &n in &[64usize, 1000, 4096, 10_000] {
            for &density in &[0.02f64, 0.5, 0.98] {
                let bits: Vec<bool> = (0..n).map(|_| rng.random_bool(density)).collect();
                let bv = BitVector::from_bools(&bits);
                let ones: Vec<usize> = bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
                let zeros: Vec<usize> =
                    bits.iter().enumerate().filter(|(_, &b)| !b).map(|(i, _)| i).collect();
                for (k, &p) in ones.iter().enumerate() {
                    assert_eq!(bv.select1(k), Some(p), "select1({k}) n={n} d={density}");
                }
                for (k, &p) in zeros.iter().enumerate() {
                    assert_eq!(bv.select0(k), Some(p), "select0({k}) n={n} d={density}");
                }
            }
        }
    }

    #[test]
    fn select_rank_inverse() {
        let mut rng = StdRng::seed_from_u64(99);
        let bits: Vec<bool> = (0..20_000).map(|_| rng.random_bool(0.3)).collect();
        let bv = BitVector::from_bools(&bits);
        for k in 0..bv.count_ones() {
            let p = bv.select1(k).unwrap();
            assert_eq!(bv.rank1(p), k);
            assert!(bv.get(p));
        }
    }
}
