//! Borrowed, zero-copy counterparts of the succinct structures.
//!
//! Each `*View` type parses the same wire encoding as its owned counterpart
//! (see [`crate::wire`]) but *borrows* every payload from the input buffer
//! instead of materialising `Vec`s, so opening an archive performs no heap
//! allocation proportional to its size. Every multi-byte read goes through
//! `u64::from_le_bytes` on the byte slice, so the buffer needs no particular
//! alignment — a plain `std::fs::read` or `mmap` result works as-is.
//!
//! Query semantics are *identical* to the owned types by construction of the
//! algorithms and by the differential test suite
//! (`neats-core/tests/view_differential.rs`): `rank`/`select`/`access`
//! answers from a view must equal the answers from the owned structure
//! decoded from the same bytes.
//!
//! [`BitVectorView`] is the one structure that needs serialized state beyond
//! the payload: its rank/select directories are persisted by the owned
//! writer (wire format v2) instead of being rebuilt on load — rebuilding is
//! exactly the O(archive) work a zero-copy open must avoid. `validate()`
//! re-derives the directories from the payload in one streaming pass and is
//! called once at archive open, after which every probe is panic-free.

use crate::bits::BitBuf;
use crate::bitvec::{select_in_word, BitVector};
use crate::elias_fano::EliasFano;
use crate::packed::PackedVec;
use crate::wavelet::WaveletMatrix;
use crate::wire::{WireError, WireReader};

/// A borrowed sequence of little-endian `u64`s over an unaligned byte slice.
#[derive(Clone, Copy, Debug)]
pub struct U64sView<'a> {
    bytes: &'a [u8],
}

impl<'a> U64sView<'a> {
    /// Wraps a byte slice whose length is a multiple of 8.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        debug_assert!(bytes.len().is_multiple_of(8));
        Self { bytes }
    }

    /// Number of `u64` elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u64> + 'a {
        self.bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
    }

    /// Copies into an owned vector (the single materialisation the owned
    /// decode path performs).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// A borrowed sequence of little-endian `u16`s over an unaligned byte slice.
#[derive(Clone, Copy, Debug)]
pub struct U16sView<'a> {
    bytes: &'a [u8],
}

impl<'a> U16sView<'a> {
    /// Wraps a byte slice whose length is a multiple of 2.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        debug_assert!(bytes.len().is_multiple_of(2));
        Self { bytes }
    }

    /// Number of `u16` elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 2
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element.
    #[inline]
    pub fn get(&self, i: usize) -> u16 {
        u16::from_le_bytes(self.bytes[i * 2..i * 2 + 2].try_into().expect("2 bytes"))
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u16> + 'a {
        self.bytes.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
    }
}

/// Borrowed counterpart of [`BitBuf`]: a randomly-readable bit string.
#[derive(Clone, Copy, Debug)]
pub struct BitBufView<'a> {
    words: U64sView<'a>,
    len: usize,
}

impl<'a> BitBufView<'a> {
    /// Parses the [`BitBuf`] wire encoding, borrowing the payload.
    pub fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let words = r.u64s_ref()?;
        if len > words.len() * 64 || (len > 0 && words.len() > len.div_ceil(64)) {
            return Err(WireError::Corrupt("BitBuf length"));
        }
        Ok(Self { words, len })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer contains no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words as a borrowed `u64` sequence.
    pub fn words(&self) -> U64sView<'a> {
        self.words
    }

    /// Reads `width` bits starting at bit position `pos` (`width` ≤ 64).
    #[inline]
    pub fn get_bits(&self, pos: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        debug_assert!(pos + width <= self.len, "read past end: {pos}+{width} > {}", self.len);
        if width == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        let lo = self.words.get(word) >> bit;
        let value = if bit + width <= 64 { lo } else { lo | (self.words.get(word + 1) << (64 - bit)) };
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Reads the single bit at `pos`.
    #[inline]
    pub fn get_bit(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len);
        (self.words.get(pos / 64) >> (pos % 64)) & 1 == 1
    }

    /// Materialises an owned [`BitBuf`] (one copy of the payload).
    pub fn to_bitbuf(&self) -> BitBuf {
        BitBuf::from_words(self.words.to_vec(), self.len)
    }
}

/// Borrowed counterpart of [`BitVector`]: rank/select over serialized bytes,
/// answering from the *persisted* directories (wire format v2) instead of
/// rebuilding them.
#[derive(Clone, Copy, Debug)]
pub struct BitVectorView<'a> {
    words: U64sView<'a>,
    len: usize,
    block_rank: U64sView<'a>,
    sub_rank: U16sView<'a>,
    ones: usize,
}

const WORDS_PER_BLOCK: usize = 8; // keep in sync with bitvec.rs

impl<'a> BitVectorView<'a> {
    /// Parses the [`BitVector`] wire encoding, borrowing payload and
    /// directories. Checks every *structural* invariant (exact section
    /// lengths, masked trailing bits); directory *contents* are checked by
    /// [`Self::validate`].
    pub fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let words = r.u64s_ref()?;
        let block_rank = r.u64s_ref()?;
        let sub_rank = r.u16s_ref()?;
        if words.len() != len.div_ceil(64) {
            return Err(WireError::Corrupt("BitVector word count"));
        }
        if !len.is_multiple_of(64) && !words.is_empty() && words.get(words.len() - 1) >> (len % 64) != 0 {
            return Err(WireError::Corrupt("BitVector garbage bits"));
        }
        if block_rank.len() != words.len().div_ceil(WORDS_PER_BLOCK) + 1 {
            return Err(WireError::Corrupt("BitVector block directory size"));
        }
        if sub_rank.len() != words.len() {
            return Err(WireError::Corrupt("BitVector sub directory size"));
        }
        let ones = block_rank.get(block_rank.len() - 1);
        if ones as usize > len {
            return Err(WireError::Corrupt("BitVector ones count"));
        }
        Ok(Self { words, len, block_rank, sub_rank, ones: ones as usize })
    }

    /// Verifies the persisted directories against the payload in one
    /// streaming popcount pass (no allocation). After this succeeds, every
    /// `rank`/`select` probe is in bounds by construction.
    pub fn validate(&self) -> Result<(), WireError> {
        let mut total = 0u64;
        for w in 0..self.words.len() {
            let blk = w / WORDS_PER_BLOCK;
            if w % WORDS_PER_BLOCK == 0 && self.block_rank.get(blk) != total {
                return Err(WireError::Corrupt("BitVector block directory"));
            }
            if self.sub_rank.get(w) as u64 != total - self.block_rank.get(blk) {
                return Err(WireError::Corrupt("BitVector sub directory"));
            }
            total += self.words.get(w).count_ones() as u64;
        }
        if self.block_rank.get(self.block_rank.len() - 1) != total {
            return Err(WireError::Corrupt("BitVector ones count"));
        }
        Ok(())
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitvector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of one bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// The bit at position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len);
        (self.words.get(pos / 64) >> (pos % 64)) & 1 == 1
    }

    /// Number of ones strictly before `pos`. `pos` may equal `len`.
    #[inline]
    pub fn rank1(&self, pos: usize) -> usize {
        debug_assert!(pos <= self.len);
        if pos == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        if word == self.words.len() {
            return self.ones;
        }
        let base = self.block_rank.get(word / WORDS_PER_BLOCK) as usize
            + self.sub_rank.get(word) as usize;
        let partial = if bit == 0 {
            0
        } else {
            (self.words.get(word) & ((1u64 << bit) - 1)).count_ones() as usize
        };
        base + partial
    }

    /// Number of zeros strictly before `pos`.
    #[inline]
    pub fn rank0(&self, pos: usize) -> usize {
        pos - self.rank1(pos)
    }

    /// Position of the `k`-th one (0-based), or `None` if `k >= count_ones()`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Superblock: largest blk with block_rank[blk] ≤ k (partition point).
        let mut lo = 0usize;
        let mut hi = self.block_rank.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.block_rank.get(mid) as usize <= k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let blk = lo - 1;
        let base = self.block_rank.get(blk) as usize;
        let rel = k - base;
        let w_lo = blk * WORDS_PER_BLOCK;
        let w_hi = (w_lo + WORDS_PER_BLOCK).min(self.words.len());
        let mut w = w_lo;
        for cand in (w_lo + 1)..w_hi {
            if (self.sub_rank.get(cand) as usize) <= rel {
                w = cand;
            } else {
                break;
            }
        }
        let count = base + self.sub_rank.get(w) as usize;
        Some(w * 64 + select_in_word(self.words.get(w), k - count))
    }

    /// Position of the `k`-th zero (0-based), or `None` if `k >= count_zeros()`.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.len - self.ones {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.block_rank.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let zeros_before =
                (mid * WORDS_PER_BLOCK * 64).min(self.len) - self.block_rank.get(mid) as usize;
            if zeros_before <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let blk = lo;
        let base = (blk * WORDS_PER_BLOCK * 64).min(self.len) - self.block_rank.get(blk) as usize;
        let rel = k - base;
        let w_lo = blk * WORDS_PER_BLOCK;
        let w_hi = (w_lo + WORDS_PER_BLOCK).min(self.words.len());
        let mut w = w_lo;
        for cand in (w_lo + 1)..w_hi {
            let zeros_in_prefix = (cand - w_lo) * 64 - self.sub_rank.get(cand) as usize;
            if zeros_in_prefix <= rel {
                w = cand;
            } else {
                break;
            }
        }
        let count = base + (w - w_lo) * 64 - self.sub_rank.get(w) as usize;
        Some(w * 64 + select_in_word(!self.words.get(w), k - count))
    }

    /// Streaming iterator over the positions of all set bits, in order.
    pub fn iter_ones(&self) -> OnesIterView<'a> {
        OnesIterView {
            words: self.words,
            word_idx: 0,
            cur: if self.words.is_empty() { 0 } else { self.words.get(0) },
            remaining: self.ones,
        }
    }

    /// Materialises an owned [`BitVector`], verifying that the persisted
    /// directories equal the ones rebuilt from the payload.
    pub fn to_bitvector(&self) -> Result<BitVector, WireError> {
        let bv = BitVector::from_words(self.words.to_vec(), self.len);
        let dirs_match = bv.count_ones() == self.ones
            && bv.block_rank_slice().iter().copied().eq(self.block_rank.iter())
            && bv.sub_rank_slice().iter().copied().eq(self.sub_rank.iter());
        if !dirs_match {
            return Err(WireError::Corrupt("BitVector directory"));
        }
        Ok(bv)
    }
}

/// Streaming iterator over set-bit positions of a [`BitVectorView`].
#[derive(Clone, Copy, Debug)]
pub struct OnesIterView<'a> {
    words: U64sView<'a>,
    word_idx: usize,
    /// Unconsumed set bits of `words[word_idx]`.
    cur: u64,
    remaining: usize,
}

impl Iterator for OnesIterView<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        while self.cur == 0 {
            self.word_idx += 1;
            self.cur = self.words.get(self.word_idx);
        }
        let pos = self.word_idx * 64 + self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        self.remaining -= 1;
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OnesIterView<'_> {}

/// Borrowed counterpart of [`EliasFano`]: a monotone sequence queried
/// straight from serialized bytes.
#[derive(Clone, Copy, Debug)]
pub struct EliasFanoView<'a> {
    high: BitVectorView<'a>,
    low: BitBufView<'a>,
    low_bits: usize,
    len: usize,
    universe: u64,
}

impl<'a> EliasFanoView<'a> {
    /// Parses the [`EliasFano`] wire encoding, borrowing the components.
    pub fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let universe = r.u64()?;
        let low_bits = r.read_len()?;
        if low_bits > 64 {
            return Err(WireError::Corrupt("EliasFano low_bits"));
        }
        let high = BitVectorView::read(r)?;
        let low = BitBufView::read(r)?;
        if len.checked_mul(low_bits) != Some(low.len()) || high.count_ones() != len {
            return Err(WireError::Corrupt("EliasFano parts"));
        }
        Ok(Self { high, low, low_bits, len, universe })
    }

    /// Verifies the high-bits rank directories (see
    /// [`BitVectorView::validate`]).
    pub fn validate(&self) -> Result<(), WireError> {
        self.high.validate()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th element (0-based). O(1).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let pos = self.high.select1(i).expect("index in range");
        let h = (pos - i) as u64;
        (h << self.low_bits) | self.low.get_bits(i * self.low_bits, self.low_bits)
    }

    /// Number of elements ≤ `x`.
    pub fn rank_leq(&self, x: u64) -> usize {
        if self.len == 0 || self.universe == 0 {
            return 0;
        }
        if x >= self.universe - 1 {
            return self.len;
        }
        let h = (x >> self.low_bits) as usize;
        let start = if h == 0 {
            0
        } else {
            match self.high.select0(h - 1) {
                Some(p) => p - (h - 1),
                None => return self.len,
            }
        };
        let end = match self.high.select0(h) {
            Some(p) => p - h,
            None => self.len,
        };
        let xl = x & if self.low_bits == 0 { 0 } else { (1u64 << self.low_bits) - 1 };
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let l = self.low.get_bits(mid * self.low_bits, self.low_bits);
            if l <= xl {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the last element ≤ `x`, or `None` if all elements are > `x`.
    pub fn predecessor_index(&self, x: u64) -> Option<usize> {
        let r = self.rank_leq(x);
        if r == 0 {
            None
        } else {
            Some(r - 1)
        }
    }

    /// Streaming iterator over the elements in order.
    pub fn iter(&self) -> EliasFanoIterView<'a> {
        EliasFanoIterView {
            low: self.low,
            low_bits: self.low_bits,
            len: self.len,
            i: 0,
            ones: self.high.iter_ones(),
        }
    }

    /// Materialises an owned [`EliasFano`] (one copy of the components).
    pub fn to_elias_fano(&self) -> Result<EliasFano, WireError> {
        let high = self.high.to_bitvector()?;
        EliasFano::from_raw_parts(high, self.low.to_bitbuf(), self.low_bits, self.len, self.universe)
            .ok_or(WireError::Corrupt("EliasFano parts"))
    }
}

/// Streaming iterator over an [`EliasFanoView`] sequence.
#[derive(Clone, Copy, Debug)]
pub struct EliasFanoIterView<'a> {
    low: BitBufView<'a>,
    low_bits: usize,
    len: usize,
    /// Next element index.
    i: usize,
    /// Forward scan over the unary-coded high parts.
    ones: OnesIterView<'a>,
}

impl Iterator for EliasFanoIterView<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.i == self.len {
            return None;
        }
        let pos = self.ones.next().expect("high bits hold one set bit per element");
        let h = (pos - self.i) as u64;
        let v = (h << self.low_bits) | self.low.get_bits(self.i * self.low_bits, self.low_bits);
        self.i += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for EliasFanoIterView<'_> {}

/// Borrowed counterpart of [`PackedVec`]: fixed-width integers over
/// serialized bytes.
#[derive(Clone, Copy, Debug)]
pub struct PackedVecView<'a> {
    buf: BitBufView<'a>,
    width: usize,
    len: usize,
}

impl<'a> PackedVecView<'a> {
    /// Parses the [`PackedVec`] wire encoding, borrowing the payload.
    pub fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let width = r.read_len()?;
        if width > 64 {
            return Err(WireError::Corrupt("PackedVec width"));
        }
        let buf = BitBufView::read(r)?;
        if len.checked_mul(width) != Some(buf.len()) {
            return Err(WireError::Corrupt("PackedVec payload size"));
        }
        Ok(Self { buf, width, len })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per element.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The `i`-th element.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.buf.get_bits(i * self.width, self.width)
    }

    /// Materialises an owned [`PackedVec`] (one copy of the payload).
    pub fn to_packed_vec(&self) -> PackedVec {
        PackedVec::from_raw_parts(self.buf.to_bitbuf(), self.width, self.len)
    }
}

/// Borrowed counterpart of [`WaveletMatrix`]: `access`/`rank` over `u8`
/// symbols straight from serialized bytes.
#[derive(Clone, Debug)]
pub struct WaveletMatrixView<'a> {
    /// At most 8 levels (`bits ≤ 8`), so this `Vec` is constant-bounded.
    levels: Vec<BitVectorView<'a>>,
    zeros: [usize; 8],
    len: usize,
    bits: usize,
}

impl<'a> WaveletMatrixView<'a> {
    /// Parses the [`WaveletMatrix`] wire encoding, borrowing the levels.
    pub fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let bits = r.read_len()?;
        let zeros_wire = r.u64s_ref()?;
        let n_levels = r.read_len()?;
        if n_levels != bits || zeros_wire.len() != bits || bits > 8 {
            return Err(WireError::Corrupt("WaveletMatrix level count"));
        }
        let mut zeros = [0usize; 8];
        for (slot, z) in zeros.iter_mut().zip(zeros_wire.iter()) {
            *slot = usize::try_from(z).map_err(|_| WireError::Corrupt("WaveletMatrix zeros"))?;
        }
        let mut levels = Vec::with_capacity(n_levels);
        for level in 0..n_levels {
            let l = BitVectorView::read(r)?;
            if l.len() != len {
                return Err(WireError::Corrupt("WaveletMatrix level length"));
            }
            if l.count_zeros() != zeros[level] {
                return Err(WireError::Corrupt("WaveletMatrix zeros"));
            }
            levels.push(l);
        }
        Ok(Self { levels, zeros, len, bits })
    }

    /// Verifies every level's rank directories.
    pub fn validate(&self) -> Result<(), WireError> {
        for l in &self.levels {
            l.validate()?;
        }
        Ok(())
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at position `i`.
    pub fn access(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let mut i = i;
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(i);
            sym = (sym << 1) | bit as u8;
            i = if bit { self.zeros[level] + bv.rank1(i) } else { bv.rank0(i) };
        }
        sym
    }

    /// Combined `access(i)` and `rank(access(i), i)` in a single traversal.
    pub fn access_rank(&self, i: usize) -> (u8, usize) {
        debug_assert!(i < self.len);
        let mut pos = i;
        let mut bucket = 0usize;
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(pos);
            sym = (sym << 1) | bit as u8;
            if bit {
                pos = self.zeros[level] + bv.rank1(pos);
                bucket = self.zeros[level] + bv.rank1(bucket);
            } else {
                pos = bv.rank0(pos);
                bucket = bv.rank0(bucket);
            }
        }
        (sym, pos - bucket)
    }

    /// Number of occurrences of `sym` in the prefix of length `pos`.
    pub fn rank(&self, sym: u8, pos: usize) -> usize {
        debug_assert!(pos <= self.len);
        if (sym as u64) >> self.bits != 0 {
            return 0;
        }
        let mut s = 0usize;
        let mut e = pos;
        for (level, bv) in self.levels.iter().enumerate() {
            let shift = self.bits - 1 - level;
            if (sym >> shift) & 1 == 0 {
                s = bv.rank0(s);
                e = bv.rank0(e);
            } else {
                s = self.zeros[level] + bv.rank1(s);
                e = self.zeros[level] + bv.rank1(e);
            }
        }
        e - s
    }

    /// Materialises an owned [`WaveletMatrix`] (one copy per level).
    pub fn to_wavelet_matrix(&self) -> Result<WaveletMatrix, WireError> {
        let levels = self
            .levels
            .iter()
            .map(|l| l.to_bitvector())
            .collect::<Result<Vec<_>, _>>()?;
        WaveletMatrix::from_raw_parts(levels, self.zeros[..self.bits].to_vec(), self.len, self.bits)
            .ok_or(WireError::Corrupt("WaveletMatrix parts"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Wire;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn view_of<'a>(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader::new(bytes)
    }

    #[test]
    fn bitvector_view_matches_owned() {
        let mut rng = StdRng::seed_from_u64(5);
        for &n in &[0usize, 1, 63, 64, 65, 511, 512, 513, 4000] {
            let bits: Vec<bool> = (0..n).map(|_| rng.random_bool(0.37)).collect();
            let bv = BitVector::from_bools(&bits);
            let bytes = bv.to_wire_bytes();
            let mut r = view_of(&bytes);
            let view = BitVectorView::read(&mut r).unwrap();
            assert!(r.is_exhausted());
            view.validate().unwrap();
            assert_eq!(view.len(), bv.len());
            assert_eq!(view.count_ones(), bv.count_ones());
            for pos in 0..=n {
                assert_eq!(view.rank1(pos), bv.rank1(pos), "rank1({pos}) n={n}");
            }
            for k in 0..bv.count_ones() {
                assert_eq!(view.select1(k), bv.select1(k), "select1({k}) n={n}");
            }
            for k in 0..bv.count_zeros() {
                assert_eq!(view.select0(k), bv.select0(k), "select0({k}) n={n}");
            }
            let ones_view: Vec<usize> = view.iter_ones().collect();
            let ones_owned: Vec<usize> = bv.iter_ones().collect();
            assert_eq!(ones_view, ones_owned);
        }
    }

    #[test]
    fn elias_fano_view_matches_owned() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v = 0u64;
        let values: Vec<u64> = (0..700).map(|_| { v += rng.random_range(0..40); v }).collect();
        let ef = EliasFano::new(&values);
        let bytes = ef.to_wire_bytes();
        let mut r = view_of(&bytes);
        let view = EliasFanoView::read(&mut r).unwrap();
        assert!(r.is_exhausted());
        view.validate().unwrap();
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(view.get(i), x);
        }
        for probe in 0..=values.last().copied().unwrap() + 3 {
            assert_eq!(view.rank_leq(probe), ef.rank_leq(probe), "rank_leq({probe})");
        }
        let streamed: Vec<u64> = view.iter().collect();
        assert_eq!(streamed, values);
    }

    #[test]
    fn packed_and_wavelet_views_match_owned() {
        let values: Vec<u64> = (0..450).map(|i| i * 13 % 777).collect();
        let p = PackedVec::new(&values);
        let bytes = p.to_wire_bytes();
        let mut r = view_of(&bytes);
        let view = PackedVecView::read(&mut r).unwrap();
        assert!(r.is_exhausted());
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(view.get(i), x);
        }

        let symbols: Vec<u8> = (0..600).map(|i| (i % 11) as u8).collect();
        let wm = WaveletMatrix::new(&symbols);
        let bytes = wm.to_wire_bytes();
        let mut r = view_of(&bytes);
        let view = WaveletMatrixView::read(&mut r).unwrap();
        assert!(r.is_exhausted());
        view.validate().unwrap();
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(view.access(i), s);
            assert_eq!(view.access_rank(i), wm.access_rank(i));
        }
        for s in 0..11u8 {
            assert_eq!(view.rank(s, symbols.len()), wm.rank(s, symbols.len()));
        }
    }

    #[test]
    fn view_truncation_never_panics() {
        let bv = BitVector::from_bools(&(0..300).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let bytes = bv.to_wire_bytes();
        for cut in 0..bytes.len() {
            let mut r = view_of(&bytes[..cut]);
            assert!(
                BitVectorView::read(&mut r).and_then(|v| v.validate()).is_err() || !r.is_exhausted(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn tampered_directory_is_rejected() {
        let bv = BitVector::from_bools(&(0..2000).map(|i| i % 5 == 0).collect::<Vec<_>>());
        let bytes = bv.to_wire_bytes();
        // Locate the block_rank area: header(8) + words(8 + w*8), then the
        // directory length prefix. Flip a directory byte and expect
        // validate() (view path) and read (owned path) to reject it.
        let words_bytes = bv.words().len() * 8;
        let dir_pos = 8 + 8 + words_bytes + 8; // first block_rank entry
        let mut tampered = bytes.clone();
        tampered[dir_pos] ^= 0x40;
        let mut r = view_of(&tampered);
        let outcome = BitVectorView::read(&mut r).and_then(|v| v.validate());
        assert!(outcome.is_err(), "tampered directory accepted by view");
        assert!(BitVector::from_wire_bytes(&tampered).is_err(), "tampered directory accepted");
    }
}
