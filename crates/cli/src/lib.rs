//! Implementation of the `neats` command-line tool.
//!
//! The CLI wraps the library's full pipeline for shell use:
//!
//! ```text
//! neats compress   <in.txt> <out.neats> [--digits D] [--kinds default|linear|all] [--sneats]
//!                  [--threads T]
//! neats lossy      <in.txt> <out.neatsl> --eps E [--digits D] [--threads T]
//! neats decompress <in.neats> <out.txt>
//! neats info       <in.neats>
//! neats get        <in.neats> <index>...
//! neats range      <in.neats> <start> <count>
//! neats sum        <in.neats> <start> <count> [--exact]
//! neats query      <archive> <index | a..b>...
//! neats stat       <archive>
//! ```
//!
//! `query` and `stat` serve any archive flavor (`.neats` or `.neatsl`)
//! through the zero-copy [`neats_core::ArchiveView`] — the file is never
//! fully decoded, which is the recommended serving path. The other query
//! commands use the owned decode path.
//!
//! Input text files contain one decimal value per line (the format the
//! paper's datasets ship in); `--digits` sets the fixed-precision scaling.

#![warn(missing_docs)]
use neats_core::{ArchiveView, Kind, NeaTS, NeaTSBuilder, NeaTSCompressed};
use std::path::Path;
use timeseries::{io::load_fixed_precision, CompressedSeries};

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Lossless compression of a text file.
    Compress {
        /// Input text path.
        input: String,
        /// Output `.neats` path.
        output: String,
        /// Fixed-precision digits.
        digits: u8,
        /// Function pool selector.
        kinds: KindPool,
        /// Use SNeaTS model selection.
        sneats: bool,
        /// Partitioner worker threads (0 = auto).
        threads: usize,
    },
    /// Lossy compression under an error bound.
    Lossy {
        /// Input text path.
        input: String,
        /// Output `.neatsl` path.
        output: String,
        /// Fixed-precision digits.
        digits: u8,
        /// Error bound in scaled-integer units.
        eps: u64,
        /// Partitioner worker threads (0 = auto).
        threads: usize,
    },
    /// Full decompression back to text.
    Decompress {
        /// Input `.neats` path.
        input: String,
        /// Output text path.
        output: String,
    },
    /// Print layout statistics.
    Info {
        /// Input `.neats` path.
        input: String,
    },
    /// Random access to one or more indices.
    Get {
        /// Input `.neats` path.
        input: String,
        /// Indices to fetch.
        indices: Vec<usize>,
    },
    /// Range query.
    Range {
        /// Input `.neats` path.
        input: String,
        /// First index.
        start: usize,
        /// Number of values.
        count: usize,
    },
    /// Range sum (estimate by default, `--exact` to scan).
    Sum {
        /// Input `.neats` path.
        input: String,
        /// First index.
        start: usize,
        /// Number of values.
        count: usize,
        /// Exact scan instead of the function-only estimate.
        exact: bool,
    },
    /// Zero-copy point/range lookups through `ArchiveView` (either flavor).
    Query {
        /// Input archive path (`.neats` or `.neatsl`).
        input: String,
        /// Lookup specs: a plain index `K`, or a half-open range `A..B`.
        specs: Vec<String>,
    },
    /// Archive statistics from the container frame, without full decode.
    Stat {
        /// Input archive path (`.neats` or `.neatsl`).
        input: String,
    },
}

/// Which function families to allow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KindPool {
    /// The paper's four defaults.
    Default,
    /// Linear only (LeaTS).
    Linear,
    /// All eleven implemented families.
    All,
}

impl KindPool {
    fn kinds(self) -> Vec<Kind> {
        match self {
            KindPool::Default => Kind::NEATS_DEFAULT.to_vec(),
            KindPool::Linear => vec![Kind::Linear],
            KindPool::All => Kind::ALL.to_vec(),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  neats compress   <in.txt> <out.neats> [--digits D] [--kinds default|linear|all] [--sneats]
                   [--threads T]
  neats lossy      <in.txt> <out.neatsl> --eps E [--digits D] [--threads T]
  neats decompress <in.neats> <out.txt>
  neats info       <in.neats>
  neats get        <in.neats> <index>...
  neats range      <in.neats> <start> <count>
  neats sum        <in.neats> <start> <count> [--exact]
  neats query      <archive> <index | a..b>...
  neats stat       <archive>";

/// Parses an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut pos: Vec<&str> = Vec::new();
    let mut digits = 0u8;
    let mut eps: Option<u64> = None;
    let mut kinds = KindPool::Default;
    let mut sneats = false;
    let mut exact = false;
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--digits" => {
                i += 1;
                digits = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError("--digits needs a number 0-18".into()))?;
            }
            "--eps" => {
                i += 1;
                eps = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or(CliError("--eps needs a non-negative integer".into()))?,
                );
            }
            "--kinds" => {
                i += 1;
                kinds = match args.get(i).map(String::as_str) {
                    Some("default") => KindPool::Default,
                    Some("linear") => KindPool::Linear,
                    Some("all") => KindPool::All,
                    other => return err(format!("unknown kind pool {other:?}")),
                };
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError("--threads needs a non-negative integer (0 = auto)".into()))?;
            }
            "--sneats" => sneats = true,
            "--exact" => exact = true,
            flag if flag.starts_with("--") => return err(format!("unknown flag {flag}")),
            p => pos.push(p),
        }
        i += 1;
    }
    let get_pos = |idx: usize, what: &str| -> Result<String, CliError> {
        pos.get(idx).map(|s| s.to_string()).ok_or(CliError(format!("missing argument: {what}")))
    };
    let parse_usize = |s: &str, what: &str| -> Result<usize, CliError> {
        s.parse().map_err(|_| CliError(format!("{what} must be a non-negative integer, got {s:?}")))
    };
    match pos.first().copied() {
        Some("compress") => Ok(Command::Compress {
            input: get_pos(1, "input")?,
            output: get_pos(2, "output")?,
            digits,
            kinds,
            sneats,
            threads,
        }),
        Some("lossy") => Ok(Command::Lossy {
            input: get_pos(1, "input")?,
            output: get_pos(2, "output")?,
            digits,
            eps: eps.ok_or(CliError("lossy requires --eps".into()))?,
            threads,
        }),
        Some("decompress") => {
            Ok(Command::Decompress { input: get_pos(1, "input")?, output: get_pos(2, "output")? })
        }
        Some("info") => Ok(Command::Info { input: get_pos(1, "input")? }),
        Some("get") => {
            let input = get_pos(1, "input")?;
            if pos.len() < 3 {
                return err("get needs at least one index");
            }
            let indices = pos[2..]
                .iter()
                .map(|s| parse_usize(s, "index"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Get { input, indices })
        }
        Some("range") => Ok(Command::Range {
            input: get_pos(1, "input")?,
            start: parse_usize(&get_pos(2, "start")?, "start")?,
            count: parse_usize(&get_pos(3, "count")?, "count")?,
        }),
        Some("sum") => Ok(Command::Sum {
            input: get_pos(1, "input")?,
            start: parse_usize(&get_pos(2, "start")?, "start")?,
            count: parse_usize(&get_pos(3, "count")?, "count")?,
            exact,
        }),
        Some("query") => {
            let input = get_pos(1, "input")?;
            if pos.len() < 3 {
                return err("query needs at least one index or a..b range");
            }
            Ok(Command::Query { input, specs: pos[2..].iter().map(|s| s.to_string()).collect() })
        }
        Some("stat") => Ok(Command::Stat { input: get_pos(1, "input")? }),
        Some(other) => err(format!("unknown command {other:?}\n{USAGE}")),
        None => err(USAGE),
    }
}

fn load_compressed(path: &str) -> Result<NeaTSCompressed, CliError> {
    let bytes = std::fs::read(path)?;
    NeaTSCompressed::from_bytes(&bytes).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Executes a command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match cmd {
        Command::Compress { input, output, digits, kinds, sneats, threads } => {
            let ts = load_fixed_precision(Path::new(&input), digits)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            let mut builder: NeaTSBuilder = NeaTS::builder().kinds(&kinds.kinds()).threads(threads);
            if sneats {
                builder = builder.model_selection(Default::default());
            }
            let c = builder.build(&ts);
            let bytes = c.to_bytes();
            std::fs::write(&output, &bytes)?;
            writeln!(
                out,
                "{} values -> {} bytes ({:.2}% of raw), {} fragments",
                ts.len(),
                bytes.len(),
                100.0 * bytes.len() as f64 / ts.uncompressed_bytes().max(1) as f64,
                c.fragment_count()
            )?;
            Ok(())
        }
        Command::Lossy { input, output, digits, eps, threads } => {
            let ts = load_fixed_precision(Path::new(&input), digits)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            let l = NeaTS::builder().threads(threads).build_lossy(&ts, eps);
            let bytes = l.to_bytes();
            std::fs::write(&output, &bytes)?;
            writeln!(
                out,
                "{} values -> {} bytes ({:.2}% of raw), {} fragments, max error {} (bound {})",
                ts.len(),
                bytes.len(),
                100.0 * bytes.len() as f64 / ts.uncompressed_bytes().max(1) as f64,
                l.fragment_count(),
                l.max_error(&ts),
                eps,
            )?;
            Ok(())
        }
        Command::Decompress { input, output } => {
            let c = load_compressed(&input)?;
            let values = c.decompress();
            let mut text = String::with_capacity(values.len() * 8);
            for v in &values {
                text.push_str(&v.to_string());
                text.push('\n');
            }
            std::fs::write(&output, text)?;
            writeln!(out, "{} values written to {output}", values.len())?;
            Ok(())
        }
        Command::Info { input } => {
            let c = load_compressed(&input)?;
            writeln!(out, "values:        {}", c.len())?;
            writeln!(out, "fragments:     {}", c.fragment_count())?;
            writeln!(out, "size:          {} bytes", c.size_in_bytes())?;
            writeln!(
                out,
                "ratio:         {:.2}% of raw 64-bit",
                100.0 * c.size_in_bytes() as f64 / (c.len() * 8).max(1) as f64
            )?;
            writeln!(out, "shift:         {}", c.shift())?;
            for (kind, count) in c.kind_histogram() {
                writeln!(out, "kind {:<12} {count} fragments", kind.name())?;
            }
            Ok(())
        }
        Command::Get { input, indices } => {
            let c = load_compressed(&input)?;
            for k in indices {
                if k >= c.len() {
                    return err(format!("index {k} out of range (len {})", c.len()));
                }
                writeln!(out, "{}", c.get(k))?;
            }
            Ok(())
        }
        Command::Range { input, start, count } => {
            let c = load_compressed(&input)?;
            if start + count > c.len() {
                return err(format!("range [{start}, {}) out of bounds", start + count));
            }
            let mut values = Vec::with_capacity(count);
            c.scan_range(start, count, &mut values);
            for v in values {
                writeln!(out, "{v}")?;
            }
            Ok(())
        }
        Command::Sum { input, start, count, exact } => {
            let c = load_compressed(&input)?;
            if start + count > c.len() {
                return err(format!("range [{start}, {}) out of bounds", start + count));
            }
            if exact {
                writeln!(out, "{}", c.sum_range_exact(start, count))?;
            } else {
                let e = c.sum_range_estimate(start, count);
                writeln!(out, "{} ± {}", e.value, e.max_error)?;
            }
            Ok(())
        }
        Command::Query { input, specs } => {
            let bytes = std::fs::read(&input)?;
            let view =
                ArchiveView::open(&bytes).map_err(|e| CliError(format!("{input}: {e}")))?;
            for spec in specs {
                if let Some((a, b)) = spec.split_once("..") {
                    let a = parse_usize_msg(a, "range start")?;
                    let b = parse_usize_msg(b, "range end")?;
                    if a > b || b > view.len() {
                        return err(format!("range {a}..{b} out of bounds (len {})", view.len()));
                    }
                    let mut values = Vec::with_capacity(b - a);
                    view.range(a..b, &mut values);
                    for v in values {
                        writeln!(out, "{v}")?;
                    }
                } else {
                    let k = parse_usize_msg(&spec, "index")?;
                    if k >= view.len() {
                        return err(format!("index {k} out of range (len {})", view.len()));
                    }
                    writeln!(out, "{}", view.at(k))?;
                }
            }
            Ok(())
        }
        Command::Stat { input } => {
            let bytes = std::fs::read(&input)?;
            let (view, sections) = ArchiveView::open_with_sections(&bytes)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            writeln!(out, "flavor:        {}", view.flavor().name())?;
            writeln!(out, "values:        {}", view.len())?;
            writeln!(out, "fragments:     {}", view.fragment_count())?;
            writeln!(out, "file:          {} bytes", bytes.len())?;
            writeln!(
                out,
                "ratio:         {:.2}% of raw 64-bit",
                100.0 * bytes.len() as f64 / (view.len() * 8).max(1) as f64
            )?;
            writeln!(out, "shift:         {}", view.shift())?;
            if let Some(l) = view.as_lossy() {
                writeln!(out, "eps:           {}", l.eps())?;
            }
            for (kind, count) in view.kind_histogram() {
                writeln!(out, "kind {:<12} {count} fragments", kind.name())?;
            }
            writeln!(out, "sections:")?;
            for s in &sections {
                writeln!(out, "  {:<14} {:>10} bytes @ {}", s.name, s.len, s.offset)?;
            }
            Ok(())
        }
    }
}

fn parse_usize_msg(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse().map_err(|_| CliError(format!("{what} must be a non-negative integer, got {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_compress_with_flags() {
        let cmd = parse_args(&argv(
            "compress in.txt out.neats --digits 3 --kinds all --sneats --threads 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Compress {
                input: "in.txt".into(),
                output: "out.neats".into(),
                digits: 3,
                kinds: KindPool::All,
                sneats: true,
                threads: 2,
            }
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("compress in.txt out --bogus")).is_err());
        assert!(parse_args(&argv("lossy in.txt out")).is_err()); // missing --eps
        assert!(parse_args(&argv("compress in.txt out --threads")).is_err()); // missing value
        assert!(parse_args(&argv("")).is_err());
    }

    #[test]
    fn parse_get_and_range() {
        assert_eq!(
            parse_args(&argv("get f.neats 1 2 30")).unwrap(),
            Command::Get { input: "f.neats".into(), indices: vec![1, 2, 30] }
        );
        assert_eq!(
            parse_args(&argv("range f.neats 100 50")).unwrap(),
            Command::Range { input: "f.neats".into(), start: 100, count: 50 }
        );
        assert!(parse_args(&argv("range f.neats abc 50")).is_err());
    }

    #[test]
    fn end_to_end_compress_query_decompress() {
        let dir = std::env::temp_dir().join("neats_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neats");
        let restored = dir.join("back.txt");
        let content: String =
            (0..500).map(|k| format!("{:.2}\n", (k as f64 / 9.0).sin() * 100.0)).collect();
        std::fs::write(&input, &content).unwrap();

        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "compress {} {} --digits 2",
                input.display(),
                packed.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&log).contains("500 values"));

        // info
        let mut info = Vec::new();
        run(parse_args(&argv(&format!("info {}", packed.display()))).unwrap(), &mut info).unwrap();
        assert!(String::from_utf8_lossy(&info).contains("values:        500"));

        // get
        let mut got = Vec::new();
        run(
            parse_args(&argv(&format!("get {} 0 10", packed.display()))).unwrap(),
            &mut got,
        )
        .unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&got)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], 0); // sin(0)·100 scaled

        // sum estimate vs exact
        let mut sum_est = Vec::new();
        run(
            parse_args(&argv(&format!("sum {} 0 500", packed.display()))).unwrap(),
            &mut sum_est,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&sum_est).contains('±'));

        // decompress and compare to scaled input
        run(
            parse_args(&argv(&format!(
                "decompress {} {}",
                packed.display(),
                restored.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let back = std::fs::read_to_string(&restored).unwrap();
        let expected: Vec<i64> = content
            .lines()
            .map(|l| (l.parse::<f64>().unwrap() * 100.0).round() as i64)
            .collect();
        let got: Vec<i64> = back.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn parse_query_and_stat() {
        assert_eq!(
            parse_args(&argv("query f.neats 5 10..20")).unwrap(),
            Command::Query { input: "f.neats".into(), specs: vec!["5".into(), "10..20".into()] }
        );
        assert_eq!(
            parse_args(&argv("stat f.neatsl")).unwrap(),
            Command::Stat { input: "f.neatsl".into() }
        );
        assert!(parse_args(&argv("query f.neats")).is_err()); // no specs
        assert!(parse_args(&argv("stat")).is_err()); // no input
    }

    #[test]
    fn query_and_stat_serve_without_full_decode() {
        let dir = std::env::temp_dir().join("neats_cli_view_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neats");
        let content: String = (0..400).map(|k| format!("{}\n", k * k / 7)).collect();
        std::fs::write(&input, &content).unwrap();
        run(
            parse_args(&argv(&format!("compress {} {}", input.display(), packed.display())))
                .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();

        // Point and range lookups via the zero-copy view.
        let mut got = Vec::new();
        run(
            parse_args(&argv(&format!("query {} 7 100..103", packed.display()))).unwrap(),
            &mut got,
        )
        .unwrap();
        let lines: Vec<i64> =
            String::from_utf8_lossy(&got).lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(lines, vec![7 * 7 / 7, 100 * 100 / 7, 101 * 101 / 7, 102 * 102 / 7]);

        // Out-of-bounds is an error, not a panic.
        let e = run(
            parse_args(&argv(&format!("query {} 400", packed.display()))).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");

        // stat reports the frame layout.
        let mut stat = Vec::new();
        run(parse_args(&argv(&format!("stat {}", packed.display()))).unwrap(), &mut stat)
            .unwrap();
        let text = String::from_utf8_lossy(&stat);
        assert!(text.contains("flavor:        lossless"), "{text}");
        assert!(text.contains("values:        400"), "{text}");
        assert!(text.contains("corrections"), "{text}");

        // Lossy archives are served by the same commands.
        let lossy = dir.join("out.neatsl");
        run(
            parse_args(&argv(&format!(
                "lossy {} {} --eps 3",
                input.display(),
                lossy.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut stat = Vec::new();
        run(parse_args(&argv(&format!("stat {}", lossy.display()))).unwrap(), &mut stat).unwrap();
        let text = String::from_utf8_lossy(&stat);
        assert!(text.contains("flavor:        lossy"), "{text}");
        assert!(text.contains("eps:           3"), "{text}");
        let mut q = Vec::new();
        run(parse_args(&argv(&format!("query {} 10", lossy.display()))).unwrap(), &mut q)
            .unwrap();
        let approx: i64 = String::from_utf8_lossy(&q).trim().parse().unwrap();
        assert!((approx - 100 / 7).unsigned_abs() <= 4, "lossy answer {approx} off");
    }

    #[test]
    fn lossy_pipeline_via_cli() {
        let dir = std::env::temp_dir().join("neats_cli_lossy");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neatsl");
        let content: String = (0..300).map(|k| format!("{k}\n")).collect();
        std::fs::write(&input, &content).unwrap();
        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "lossy {} {} --eps 5",
                input.display(),
                packed.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&log);
        assert!(text.contains("max error"), "{text}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut sink = Vec::new();
        let e = run(
            Command::Info { input: "/nonexistent/definitely-missing.neats".into() },
            &mut sink,
        )
        .unwrap_err();
        assert!(e.0.contains("i/o error") || e.0.contains("missing"), "{e}");
    }
}
