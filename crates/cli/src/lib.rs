//! Implementation of the `neats` command-line tool.
//!
//! The CLI wraps the library's full pipeline for shell use:
//!
//! ```text
//! neats compress   <in.txt> <out.neats> [--digits D] [--kinds default|linear|all] [--sneats]
//!                  [--threads T]
//! neats lossy      <in.txt> <out.neatsl> --eps E [--digits D] [--threads T]
//! neats decompress <in.neats> <out.txt>
//! neats info       <in.neats>
//! neats get        <in.neats> <index>...
//! neats range      <in.neats> <start> <count>
//! neats sum        <in.neats> <start> <count> [--exact]
//! neats query      <archive> <index | a..b>...
//! neats stat       <archive>
//! neats store build <out.pack> <in...> [--digits D] [--eps E] [--segment N]
//!                   [--threads T] [--append]
//! neats store ls    <pack>
//! neats store query <pack> <series> <index | a..b | @time>...
//! neats ingest      <dir> <in...> [--digits D] [--fsync always|never|N] [--no-seal]
//! neats serve       <pack | dir> [--addr HOST:PORT] [--threads T] [--cache N]
//!                   [--slow-query-us U] [--trace-ring N]
//! neats bench all   [--n N] [--queries Q] [--seed S] [--codecs LIST] [--shapes LIST]
//!                   [--out FILE.json] [--md FILE.md] [--check COMMITTED.json]
//! ```
//!
//! `query` and `stat` serve any archive flavor (`.neats` or `.neatsl`)
//! through the zero-copy [`neats_core::ArchiveView`] — the file is never
//! fully decoded, which is the recommended serving path for single
//! archives. The other single-archive query commands use the owned decode
//! path.
//!
//! The `store` family works on multi-series packfiles ([`neats_store`]):
//! `build` ingests one series per input file (named after the file stem)
//! and compresses segments in parallel; `ls` prints the catalog; `query`
//! serves point, index-range, and `@timestamp` lookups zero-copy through
//! [`neats_store::Store`] — the recommended path when serving many series.
//!
//! `ingest` appends series into a live ingestion directory
//! ([`neats_ingest::Ingestor`]): every accepted batch is WAL-logged before
//! it is acknowledged (`--fsync` picks the durability/throughput point),
//! and full chunks are sealed into the directory's pack on exit unless
//! `--no-seal` leaves them in the WAL for the next opener.
//!
//! `serve` mounts a pack — or, given a directory, the live ingestor with a
//! background sealer, which additionally accepts `POST /write` — behind
//! the multi-threaded HTTP frontend ([`neats_serve`]): it prints
//! `listening on <addr>` (the actual port when bound with `:0`) and serves
//! until killed. Endpoints and the wire grammar are specified in
//! `docs/PROTOCOL.md` at the repository root.
//!
//! `bench all` runs the unified codec × shape matrix ([`bench::suite`]):
//! every NeaTS flavor and every baseline codec over the paper's 16 datasets
//! plus 8 adversarial generators, conformance-checked inline, emitting
//! `BENCH_all.json` (schema-versioned records) and `BENCHMARKS.md` (the
//! committed competitive table). `--check` re-validates a committed JSON
//! artifact against the fresh sweep's schema and rosters — the CI smoke
//! gate. Unset knobs fall back to the `NEATS_BENCH_*` environment.
//!
//! Input text files contain one decimal value per line (the format the
//! paper's datasets ship in) or `timestamp,value` CSV lines (timestamps
//! must strictly increase); `--digits` sets the fixed-precision scaling.

#![warn(missing_docs)]
use neats_core::{ArchiveView, Kind, NeaTS, NeaTSBuilder, NeaTSCompressed};
use neats_ingest::{BackgroundConfig, FsyncPolicy, IngestConfig, Ingestor};
use neats_serve::{ReactorMode, ServeConfig, Server};
use neats_store::{CacheSharding, Store, StoreConfig, StoreMode, StoreOptions, StoreWriter};
use std::path::Path;
use timeseries::{io::load_fixed_precision, CompressedSeries};

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Lossless compression of a text file.
    Compress {
        /// Input text path.
        input: String,
        /// Output `.neats` path.
        output: String,
        /// Fixed-precision digits.
        digits: u8,
        /// Function pool selector.
        kinds: KindPool,
        /// Use SNeaTS model selection.
        sneats: bool,
        /// Partitioner worker threads (0 = auto).
        threads: usize,
    },
    /// Lossy compression under an error bound.
    Lossy {
        /// Input text path.
        input: String,
        /// Output `.neatsl` path.
        output: String,
        /// Fixed-precision digits.
        digits: u8,
        /// Error bound in scaled-integer units.
        eps: u64,
        /// Partitioner worker threads (0 = auto).
        threads: usize,
    },
    /// Full decompression back to text.
    Decompress {
        /// Input `.neats` path.
        input: String,
        /// Output text path.
        output: String,
    },
    /// Print layout statistics.
    Info {
        /// Input `.neats` path.
        input: String,
    },
    /// Random access to one or more indices.
    Get {
        /// Input `.neats` path.
        input: String,
        /// Indices to fetch.
        indices: Vec<usize>,
    },
    /// Range query.
    Range {
        /// Input `.neats` path.
        input: String,
        /// First index.
        start: usize,
        /// Number of values.
        count: usize,
    },
    /// Range sum (estimate by default, `--exact` to scan).
    Sum {
        /// Input `.neats` path.
        input: String,
        /// First index.
        start: usize,
        /// Number of values.
        count: usize,
        /// Exact scan instead of the function-only estimate.
        exact: bool,
    },
    /// Zero-copy point/range lookups through `ArchiveView` (either flavor).
    Query {
        /// Input archive path (`.neats` or `.neatsl`).
        input: String,
        /// Lookup specs: a plain index `K`, or a half-open range `A..B`.
        specs: Vec<String>,
    },
    /// Archive statistics from the container frame, without full decode.
    Stat {
        /// Input archive path (`.neats` or `.neatsl`).
        input: String,
    },
    /// Build (or append to) a multi-series packfile, one series per input.
    StoreBuild {
        /// Output pack path.
        output: String,
        /// Input text files (one series each, named after the file stem).
        inputs: Vec<String>,
        /// Fixed-precision digits for values.
        digits: u8,
        /// Lossy error bound (lossless when absent).
        eps: Option<u64>,
        /// Max points per segment (0 = default).
        segment: usize,
        /// Segment-compression worker threads (0 = auto).
        threads: usize,
        /// Append to an existing pack instead of creating a fresh one.
        append: bool,
    },
    /// List a pack's catalog.
    StoreLs {
        /// Pack path.
        pack: String,
    },
    /// Zero-copy lookups in a pack through the store.
    StoreQuery {
        /// Pack path.
        pack: String,
        /// Series name.
        series: String,
        /// Lookup specs: index `K`, half-open range `A..B`, or `@timestamp`.
        specs: Vec<String>,
    },
    /// Append series into a live ingestion directory (WAL + head + pack).
    Ingest {
        /// Ingestion directory (created on first use).
        dir: String,
        /// Input text files (one series each, named after the file stem).
        inputs: Vec<String>,
        /// Fixed-precision digits for values.
        digits: u8,
        /// WAL fsync policy.
        fsync: FsyncPolicy,
        /// Leave everything in the WAL instead of sealing on exit.
        no_seal: bool,
    },
    /// Serve a pack (read-only) or an ingestion directory (live) over HTTP.
    Serve {
        /// Pack path, or an ingestion directory for live serving.
        pack: String,
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads (0 = auto: `NEATS_SERVE_THREADS`, else all cores).
        threads: usize,
        /// Segment-view cache capacity (0 disables caching).
        cache: usize,
        /// Slow-query threshold in microseconds (0 = off, `None` = env/default).
        slow_query_us: Option<u64>,
        /// Request-trace ring capacity (0 disables, `None` = env/default).
        trace_ring: Option<usize>,
    },
    /// Run the full codec × shape conformance + benchmark matrix.
    BenchAll {
        /// Points per generated series (`None` = `NEATS_BENCH_N`/default).
        n: Option<usize>,
        /// Timed random-access queries per cell (`None` = env/default).
        queries: Option<usize>,
        /// Generator seed (`None` = env/default).
        seed: Option<u64>,
        /// Comma-separated codec-name substring filter.
        codecs: Option<String>,
        /// Comma-separated shape-name substring filter.
        shapes: Option<String>,
        /// JSON artifact path (`None` = `NEATS_BENCH_OUT` or `BENCH_all.json`).
        out: Option<String>,
        /// Markdown artifact path (`None` = `NEATS_BENCH_MD` or `BENCHMARKS.md`).
        md: Option<String>,
        /// Committed JSON artifact to schema-check after the sweep.
        check: Option<String>,
    },
}

/// Which function families to allow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KindPool {
    /// The paper's four defaults.
    Default,
    /// Linear only (LeaTS).
    Linear,
    /// All eleven implemented families.
    All,
}

impl KindPool {
    fn kinds(self) -> Vec<Kind> {
        match self {
            KindPool::Default => Kind::NEATS_DEFAULT.to_vec(),
            KindPool::Linear => vec![Kind::Linear],
            KindPool::All => Kind::ALL.to_vec(),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  neats compress   <in.txt> <out.neats> [--digits D] [--kinds default|linear|all] [--sneats]
                   [--threads T]
  neats lossy      <in.txt> <out.neatsl> --eps E [--digits D] [--threads T]
  neats decompress <in.neats> <out.txt>
  neats info       <in.neats>
  neats get        <in.neats> <index>...
  neats range      <in.neats> <start> <count>
  neats sum        <in.neats> <start> <count> [--exact]
  neats query      <archive> <index | a..b>...
  neats stat       <archive>
  neats store build <out.pack> <in...> [--digits D] [--eps E] [--segment N]
                    [--threads T] [--append]
  neats store ls    <pack>
  neats store query <pack> <series> <index | a..b | @time>...
  neats ingest      <dir> <in...> [--digits D] [--fsync always|never|N] [--no-seal]
  neats serve       <pack | dir> [--addr HOST:PORT] [--threads T] [--cache N]
                    [--slow-query-us U] [--trace-ring N]
  neats bench all   [--n N] [--queries Q] [--seed S] [--codecs LIST] [--shapes LIST]
                    [--out FILE.json] [--md FILE.md] [--check COMMITTED.json]";

/// Parses an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut pos: Vec<&str> = Vec::new();
    let mut digits = 0u8;
    let mut eps: Option<u64> = None;
    let mut kinds = KindPool::Default;
    let mut sneats = false;
    let mut exact = false;
    let mut threads = 0usize;
    let mut segment = 0usize;
    let mut append = false;
    let mut addr: Option<String> = None;
    let mut cache: Option<usize> = None;
    let mut slow_query_us: Option<u64> = None;
    let mut trace_ring: Option<usize> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut no_seal = false;
    let mut bench_n: Option<usize> = None;
    let mut bench_queries: Option<usize> = None;
    let mut bench_seed: Option<u64> = None;
    let mut bench_codecs: Option<String> = None;
    let mut bench_shapes: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut bench_md: Option<String> = None;
    let mut bench_check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--digits" => {
                i += 1;
                digits = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError("--digits needs a number 0-18".into()))?;
            }
            "--eps" => {
                i += 1;
                eps = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or(CliError("--eps needs a non-negative integer".into()))?,
                );
            }
            "--kinds" => {
                i += 1;
                kinds = match args.get(i).map(String::as_str) {
                    Some("default") => KindPool::Default,
                    Some("linear") => KindPool::Linear,
                    Some("all") => KindPool::All,
                    other => return err(format!("unknown kind pool {other:?}")),
                };
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--threads needs a non-negative integer (0 = auto)".into(),
                ))?;
            }
            "--segment" => {
                i += 1;
                segment = args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--segment needs a point count (0 = default)".into(),
                ))?;
            }
            "--addr" => {
                i += 1;
                addr = Some(
                    args.get(i)
                        .cloned()
                        .ok_or(CliError("--addr needs a host:port".into()))?,
                );
            }
            "--cache" => {
                i += 1;
                cache = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or(CliError("--cache needs a view count (0 disables)".into()))?,
                );
            }
            "--slow-query-us" => {
                i += 1;
                slow_query_us = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--slow-query-us needs a microsecond count (0 = off)".into(),
                ))?);
            }
            "--trace-ring" => {
                i += 1;
                trace_ring = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--trace-ring needs an entry count (0 disables)".into(),
                ))?);
            }
            "--fsync" => {
                i += 1;
                fsync = match args.get(i).map(String::as_str) {
                    Some("always") => FsyncPolicy::Always,
                    Some("never") => FsyncPolicy::Never,
                    Some(n) => FsyncPolicy::EveryN(n.parse().map_err(|_| {
                        CliError("--fsync needs always, never, or a record count".into())
                    })?),
                    None => return err("--fsync needs always, never, or a record count"),
                };
            }
            "--n" => {
                i += 1;
                bench_n = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--n needs a point count".into(),
                ))?);
            }
            "--queries" => {
                i += 1;
                bench_queries = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--queries needs a query count".into(),
                ))?);
            }
            "--seed" => {
                i += 1;
                bench_seed = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or(CliError(
                    "--seed needs a non-negative integer".into(),
                ))?);
            }
            "--codecs" => {
                i += 1;
                bench_codecs = Some(args.get(i).cloned().ok_or(CliError(
                    "--codecs needs a comma-separated name filter".into(),
                ))?);
            }
            "--shapes" => {
                i += 1;
                bench_shapes = Some(args.get(i).cloned().ok_or(CliError(
                    "--shapes needs a comma-separated name filter".into(),
                ))?);
            }
            "--out" => {
                i += 1;
                bench_out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or(CliError("--out needs a file path".into()))?,
                );
            }
            "--md" => {
                i += 1;
                bench_md = Some(
                    args.get(i)
                        .cloned()
                        .ok_or(CliError("--md needs a file path".into()))?,
                );
            }
            "--check" => {
                i += 1;
                bench_check = Some(
                    args.get(i)
                        .cloned()
                        .ok_or(CliError("--check needs a committed json path".into()))?,
                );
            }
            "--sneats" => sneats = true,
            "--append" => append = true,
            "--exact" => exact = true,
            "--no-seal" => no_seal = true,
            flag if flag.starts_with("--") => return err(format!("unknown flag {flag}")),
            p => pos.push(p),
        }
        i += 1;
    }
    let get_pos = |idx: usize, what: &str| -> Result<String, CliError> {
        pos.get(idx)
            .map(|s| s.to_string())
            .ok_or(CliError(format!("missing argument: {what}")))
    };
    let parse_usize = |s: &str, what: &str| -> Result<usize, CliError> {
        s.parse()
            .map_err(|_| CliError(format!("{what} must be a non-negative integer, got {s:?}")))
    };
    match pos.first().copied() {
        Some("compress") => Ok(Command::Compress {
            input: get_pos(1, "input")?,
            output: get_pos(2, "output")?,
            digits,
            kinds,
            sneats,
            threads,
        }),
        Some("lossy") => Ok(Command::Lossy {
            input: get_pos(1, "input")?,
            output: get_pos(2, "output")?,
            digits,
            eps: eps.ok_or(CliError("lossy requires --eps".into()))?,
            threads,
        }),
        Some("decompress") => Ok(Command::Decompress {
            input: get_pos(1, "input")?,
            output: get_pos(2, "output")?,
        }),
        Some("info") => Ok(Command::Info {
            input: get_pos(1, "input")?,
        }),
        Some("get") => {
            let input = get_pos(1, "input")?;
            if pos.len() < 3 {
                return err("get needs at least one index");
            }
            let indices = pos[2..]
                .iter()
                .map(|s| parse_usize(s, "index"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Get { input, indices })
        }
        Some("range") => Ok(Command::Range {
            input: get_pos(1, "input")?,
            start: parse_usize(&get_pos(2, "start")?, "start")?,
            count: parse_usize(&get_pos(3, "count")?, "count")?,
        }),
        Some("sum") => Ok(Command::Sum {
            input: get_pos(1, "input")?,
            start: parse_usize(&get_pos(2, "start")?, "start")?,
            count: parse_usize(&get_pos(3, "count")?, "count")?,
            exact,
        }),
        Some("query") => {
            let input = get_pos(1, "input")?;
            if pos.len() < 3 {
                return err("query needs at least one index or a..b range");
            }
            Ok(Command::Query {
                input,
                specs: pos[2..].iter().map(|s| s.to_string()).collect(),
            })
        }
        Some("stat") => Ok(Command::Stat {
            input: get_pos(1, "input")?,
        }),
        Some("store") => match pos.get(1).copied() {
            Some("build") => {
                let output = get_pos(2, "output pack")?;
                if pos.len() < 4 {
                    return err("store build needs at least one input file");
                }
                Ok(Command::StoreBuild {
                    output,
                    inputs: pos[3..].iter().map(|s| s.to_string()).collect(),
                    digits,
                    eps,
                    segment,
                    threads,
                    append,
                })
            }
            Some("ls") => Ok(Command::StoreLs {
                pack: get_pos(2, "pack")?,
            }),
            Some("query") => {
                let pack = get_pos(2, "pack")?;
                let series = get_pos(3, "series")?;
                if pos.len() < 5 {
                    return err("store query needs at least one index, a..b range, or @time");
                }
                Ok(Command::StoreQuery {
                    pack,
                    series,
                    specs: pos[4..].iter().map(|s| s.to_string()).collect(),
                })
            }
            other => err(format!("unknown store subcommand {other:?}\n{USAGE}")),
        },
        Some("ingest") => {
            let dir = get_pos(1, "directory")?;
            if pos.len() < 3 {
                return err("ingest needs at least one input file");
            }
            Ok(Command::Ingest {
                dir,
                inputs: pos[2..].iter().map(|s| s.to_string()).collect(),
                digits,
                fsync,
                no_seal,
            })
        }
        Some("bench") => match pos.get(1).copied() {
            Some("all") => Ok(Command::BenchAll {
                n: bench_n,
                queries: bench_queries,
                seed: bench_seed,
                codecs: bench_codecs,
                shapes: bench_shapes,
                out: bench_out,
                md: bench_md,
                check: bench_check,
            }),
            other => err(format!("unknown bench subcommand {other:?}\n{USAGE}")),
        },
        Some("serve") => Ok(Command::Serve {
            pack: get_pos(1, "pack")?,
            addr: addr.unwrap_or_else(|| "127.0.0.1:8462".to_string()),
            threads,
            cache: cache.unwrap_or(256),
            slow_query_us,
            trace_ring,
        }),
        Some(other) => err(format!("unknown command {other:?}\n{USAGE}")),
        None => err(USAGE),
    }
}

fn load_compressed(path: &str) -> Result<NeaTSCompressed, CliError> {
    let bytes = std::fs::read(path)?;
    NeaTSCompressed::from_bytes(&bytes).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Executes a command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match cmd {
        Command::Compress {
            input,
            output,
            digits,
            kinds,
            sneats,
            threads,
        } => {
            let ts = load_fixed_precision(Path::new(&input), digits)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            let mut builder: NeaTSBuilder = NeaTS::builder().kinds(&kinds.kinds()).threads(threads);
            if sneats {
                builder = builder.model_selection(Default::default());
            }
            let c = builder.build(&ts);
            let bytes = c.to_bytes();
            std::fs::write(&output, &bytes)?;
            writeln!(
                out,
                "{} values -> {} bytes ({:.2}% of raw), {} fragments",
                ts.len(),
                bytes.len(),
                100.0 * bytes.len() as f64 / ts.uncompressed_bytes().max(1) as f64,
                c.fragment_count()
            )?;
            Ok(())
        }
        Command::Lossy {
            input,
            output,
            digits,
            eps,
            threads,
        } => {
            let ts = load_fixed_precision(Path::new(&input), digits)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            let l = NeaTS::builder().threads(threads).build_lossy(&ts, eps);
            let bytes = l.to_bytes();
            std::fs::write(&output, &bytes)?;
            writeln!(
                out,
                "{} values -> {} bytes ({:.2}% of raw), {} fragments, max error {} (bound {})",
                ts.len(),
                bytes.len(),
                100.0 * bytes.len() as f64 / ts.uncompressed_bytes().max(1) as f64,
                l.fragment_count(),
                l.max_error(&ts),
                eps,
            )?;
            Ok(())
        }
        Command::Decompress { input, output } => {
            let c = load_compressed(&input)?;
            let values = c.decompress();
            let mut text = String::with_capacity(values.len() * 8);
            for v in &values {
                text.push_str(&v.to_string());
                text.push('\n');
            }
            std::fs::write(&output, text)?;
            writeln!(out, "{} values written to {output}", values.len())?;
            Ok(())
        }
        Command::Info { input } => {
            let c = load_compressed(&input)?;
            writeln!(out, "values:        {}", c.len())?;
            writeln!(out, "fragments:     {}", c.fragment_count())?;
            writeln!(out, "size:          {} bytes", c.size_in_bytes())?;
            writeln!(
                out,
                "ratio:         {:.2}% of raw 64-bit",
                100.0 * c.size_in_bytes() as f64 / (c.len() * 8).max(1) as f64
            )?;
            writeln!(out, "shift:         {}", c.shift())?;
            for (kind, count) in c.kind_histogram() {
                writeln!(out, "kind {:<12} {count} fragments", kind.name())?;
            }
            Ok(())
        }
        Command::Get { input, indices } => {
            let c = load_compressed(&input)?;
            for k in indices {
                if k >= c.len() {
                    return err(format!("index {k} out of range (len {})", c.len()));
                }
                writeln!(out, "{}", c.get(k))?;
            }
            Ok(())
        }
        Command::Range {
            input,
            start,
            count,
        } => {
            let c = load_compressed(&input)?;
            if start + count > c.len() {
                return err(format!("range [{start}, {}) out of bounds", start + count));
            }
            let mut values = Vec::with_capacity(count);
            c.scan_range(start, count, &mut values);
            for v in values {
                writeln!(out, "{v}")?;
            }
            Ok(())
        }
        Command::Sum {
            input,
            start,
            count,
            exact,
        } => {
            let c = load_compressed(&input)?;
            if start + count > c.len() {
                return err(format!("range [{start}, {}) out of bounds", start + count));
            }
            if exact {
                writeln!(out, "{}", c.sum_range_exact(start, count))?;
            } else {
                let e = c.sum_range_estimate(start, count);
                writeln!(out, "{} ± {}", e.value, e.max_error)?;
            }
            Ok(())
        }
        Command::Query { input, specs } => {
            let bytes = std::fs::read(&input)?;
            let view = ArchiveView::open(&bytes).map_err(|e| CliError(format!("{input}: {e}")))?;
            for spec in specs {
                if let Some((a, b)) = spec.split_once("..") {
                    let a = parse_usize_msg(a, "range start")?;
                    let b = parse_usize_msg(b, "range end")?;
                    if a > b || b > view.len() {
                        return err(format!("range {a}..{b} out of bounds (len {})", view.len()));
                    }
                    let mut values = Vec::with_capacity(b - a);
                    view.range(a..b, &mut values);
                    for v in values {
                        writeln!(out, "{v}")?;
                    }
                } else {
                    let k = parse_usize_msg(&spec, "index")?;
                    if k >= view.len() {
                        return err(format!("index {k} out of range (len {})", view.len()));
                    }
                    writeln!(out, "{}", view.at(k))?;
                }
            }
            Ok(())
        }
        Command::Stat { input } => {
            let bytes = std::fs::read(&input)?;
            let (view, sections) = ArchiveView::open_with_sections(&bytes)
                .map_err(|e| CliError(format!("{input}: {e}")))?;
            writeln!(out, "flavor:        {}", view.flavor().name())?;
            writeln!(out, "values:        {}", view.len())?;
            writeln!(out, "fragments:     {}", view.fragment_count())?;
            writeln!(out, "file:          {} bytes", bytes.len())?;
            writeln!(
                out,
                "ratio:         {:.2}% of raw 64-bit",
                100.0 * bytes.len() as f64 / (view.len() * 8).max(1) as f64
            )?;
            writeln!(out, "shift:         {}", view.shift())?;
            if let Some(l) = view.as_lossy() {
                writeln!(out, "eps:           {}", l.eps())?;
            }
            for (kind, count) in view.kind_histogram() {
                writeln!(out, "kind {:<12} {count} fragments", kind.name())?;
            }
            writeln!(out, "sections:")?;
            for s in &sections {
                writeln!(out, "  {:<14} {:>10} bytes @ {}", s.name, s.len, s.offset)?;
            }
            Ok(())
        }
        Command::StoreBuild {
            output,
            inputs,
            digits,
            eps,
            segment,
            threads,
            append,
        } => {
            let cfg = StoreConfig {
                segment_points: if segment == 0 {
                    neats_store::DEFAULT_SEGMENT_POINTS
                } else {
                    segment
                },
                builder: NeaTS::builder(),
                mode: match eps {
                    Some(eps) => StoreMode::Lossy { eps },
                    None => StoreMode::Lossless,
                },
                threads,
            };
            let mut writer = if append {
                let existing = std::fs::read(&output).map_err(|e| {
                    CliError(format!("{output}: {e} (--append needs an existing pack)"))
                })?;
                StoreWriter::append_to(&existing, cfg)
                    .map_err(|e| CliError(format!("{output}: {e}")))?
            } else {
                StoreWriter::new(cfg)
            };
            let mut total_points = 0usize;
            for input in &inputs {
                let name = Path::new(input)
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .filter(|s| !s.is_empty())
                    .ok_or(CliError(format!("{input}: cannot derive a series name")))?;
                let (stamps, values) = load_series_file(input, digits)?;
                total_points += values.len();
                writer
                    .ingest(&name, &stamps, &values)
                    .map_err(|e| CliError(format!("{input}: {e}")))?;
            }
            let pack = writer.finish().map_err(|e| CliError(e.to_string()))?;
            std::fs::write(&output, &pack)?;
            writeln!(
                out,
                "{} series, {} points -> {} bytes ({output})",
                inputs.len(),
                total_points,
                pack.len()
            )?;
            Ok(())
        }
        Command::StoreLs { pack } => {
            let store = Store::open_path(&pack).map_err(|e| CliError(format!("{pack}: {e}")))?;
            writeln!(
                out,
                "{:<20} {:>9} {:>9} {:>10} {:>21} {:>12}",
                "series", "mode", "points", "segments", "time span", "bytes"
            )?;
            for e in store.entries() {
                let mode = match e.mode() {
                    StoreMode::Lossless => "lossless".to_string(),
                    StoreMode::Lossy { eps } => format!("lossy/{eps}"),
                };
                writeln!(
                    out,
                    "{:<20} {:>9} {:>9} {:>10} {:>10}..{:>9} {:>12}",
                    e.name(),
                    mode,
                    e.len(),
                    e.segments().len(),
                    e.t_min(),
                    e.t_max(),
                    e.stored_bytes()
                )?;
            }
            writeln!(
                out,
                "total: {} series, {} points, {} bytes on disk, {} dead",
                store.series_count(),
                store.total_points(),
                store.as_bytes().len(),
                store.dead_bytes()
            )?;
            Ok(())
        }
        Command::StoreQuery {
            pack,
            series,
            specs,
        } => {
            let store = Store::open_path(&pack).map_err(|e| CliError(format!("{pack}: {e}")))?;
            let fail = |e: neats_store::StoreError| CliError(format!("{series}: {e}"));
            for spec in specs {
                if let Some(t) = spec.strip_prefix('@') {
                    let t: u64 = t
                        .parse()
                        .map_err(|_| CliError(format!("@time must be an integer, got {spec:?}")))?;
                    match store.at_time(&series, t).map_err(fail)? {
                        Some(v) => writeln!(out, "{v}")?,
                        None => {
                            return err(format!("no sample at timestamp {t} in series {series:?}"))
                        }
                    }
                } else if let Some((a, b)) = spec.split_once("..") {
                    let a = parse_usize_msg(a, "range start")?;
                    let b = parse_usize_msg(b, "range end")?;
                    let mut values = Vec::new();
                    store.range(&series, a..b, &mut values).map_err(fail)?;
                    for v in values {
                        writeln!(out, "{v}")?;
                    }
                } else {
                    let k = parse_usize_msg(&spec, "index")?;
                    writeln!(out, "{}", store.get(&series, k).map_err(fail)?)?;
                }
            }
            Ok(())
        }
        Command::Ingest {
            dir,
            inputs,
            digits,
            fsync,
            no_seal,
        } => {
            let cfg = IngestConfig {
                fsync,
                ..IngestConfig::default()
            };
            let ing = Ingestor::open(&dir, cfg).map_err(|e| CliError(format!("{dir}: {e}")))?;
            let mut total_points = 0usize;
            for input in &inputs {
                let name = Path::new(input)
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .filter(|s| !s.is_empty())
                    .ok_or(CliError(format!("{input}: cannot derive a series name")))?;
                let (stamps, values) = load_series_file(input, digits)?;
                total_points += values.len();
                ing.append(&name, &stamps, &values)
                    .map_err(|e| CliError(format!("{input}: {e}")))?;
            }
            if !no_seal {
                ing.flush()
                    .map_err(|e| CliError(format!("{dir}: seal: {e}")))?;
            }
            writeln!(
                out,
                "{} series, {total_points} points ingested into {dir} \
                 (epoch {}, {} points in the WAL)",
                inputs.len(),
                ing.epoch(),
                ing.head_points(),
            )?;
            Ok(())
        }
        Command::Serve {
            pack,
            addr,
            threads,
            cache,
            slow_query_us,
            trace_ring,
        } => {
            // A directory serves live (ingestor + background sealer and
            // POST /write); a file serves the read-only pack.
            let live = Path::new(&pack).is_dir();
            let cfg = ServeConfig {
                threads,
                slow_query_us,
                trace_ring,
                // Surfaces on /stats ("source") and /metrics (neats_build_info).
                source_label: pack.clone(),
                ..ServeConfig::default()
            };
            // The server runs a fixed pool either way (reactor shards or
            // blocking workers), so thread-sharded caching applies: each
            // serving thread owns a private cache shard and never contends
            // on a cache lock with its siblings.
            let sharding = CacheSharding::ByThread;
            let (server, _background, series, points) = if live {
                let ing = Ingestor::open(
                    &pack,
                    IngestConfig {
                        cache_capacity: cache,
                        cache_sharding: sharding,
                        ..IngestConfig::default()
                    },
                )
                .map_err(|e| CliError(format!("{pack}: {e}")))?;
                let ing = std::sync::Arc::new(ing);
                let background = ing.start_background(BackgroundConfig::default());
                let (series, points) = (ing.series_count(), ing.total_points());
                let server = Server::bind(ing, addr.as_str(), cfg)
                    .map_err(|e| CliError(format!("bind {addr}: {e}")))?;
                (server, Some(background), series, points)
            } else {
                let store = Store::open_with(
                    std::fs::read(&pack).map_err(|e| CliError(format!("{pack}: {e}")))?,
                    StoreOptions {
                        cache_capacity: cache,
                        cache_sharding: sharding,
                    },
                )
                .map_err(|e| CliError(format!("{pack}: {e}")))?;
                let (series, points) = (store.series_count(), store.total_points());
                let server = Server::bind(std::sync::Arc::new(store), addr.as_str(), cfg)
                    .map_err(|e| CliError(format!("bind {addr}: {e}")))?;
                (server, None, series, points)
            };
            let (discipline, pool) = match server.mode() {
                ReactorMode::Reactor => ("reactor shard(s)", server.shards()),
                _ => ("worker(s)", server.threads()),
            };
            writeln!(
                out,
                "serving {series} series ({points} points) {} {pack} with {pool} {discipline}",
                if live { "live from" } else { "from" },
            )?;
            // The smoke scripts scrape this exact line for the bound port.
            writeln!(out, "listening on {}", server.local_addr())?;
            out.flush()?;
            // Runs until the process is killed; the library API
            // (ServerHandle::shutdown) is the graceful-shutdown hook for
            // embedders — a std-only binary has no signal handler to wire
            // it to.
            server.run().map_err(|e| CliError(format!("serve: {e}")))
        }
        Command::BenchAll {
            n,
            queries,
            seed,
            codecs,
            shapes,
            out: out_path,
            md: md_path,
            check,
        } => {
            use bench::suite::matrix::{
                check_committed, run_matrix_with, MatrixConfig, SCHEMA_VERSION,
            };
            // Flags override the NEATS_BENCH_* environment, which in turn
            // falls back to the library defaults — one config path for the
            // CLI, the `bench_all` binary, and CI.
            let mut config = MatrixConfig::from_env();
            if let Some(n) = n {
                config.n = n;
            }
            if let Some(q) = queries {
                config.queries = q;
            }
            if let Some(s) = seed {
                config.seed = s;
            }
            if codecs.is_some() {
                config.codec_filter = codecs;
            }
            if shapes.is_some() {
                config.shape_filter = shapes;
            }
            writeln!(
                out,
                "bench all: n={} queries={} scans={}x{} seed={}",
                config.n, config.queries, config.scans, config.scan_len, config.seed
            )?;
            let report = run_matrix_with(config, |cell| {
                let _ = writeln!(
                    out,
                    "  {:<14} {:<14} ratio {:>7.2}%  ra p50 {:>7.0} ns  p99 {:>8.0} ns  \
                     scan {:>8.1} Mv/s",
                    cell.shape,
                    cell.codec,
                    cell.ratio_pct,
                    cell.ra_p50_ns,
                    cell.ra_p99_ns,
                    cell.scan_mvps
                );
            })
            .map_err(|e| CliError(format!("conformance failure: {e}")))?;
            let out_path = out_path
                .or_else(|| std::env::var("NEATS_BENCH_OUT").ok())
                .unwrap_or_else(|| "BENCH_all.json".into());
            let md_path = md_path
                .or_else(|| std::env::var("NEATS_BENCH_MD").ok())
                .unwrap_or_else(|| "BENCHMARKS.md".into());
            std::fs::write(&out_path, report.to_json().render())?;
            std::fs::write(&md_path, report.to_markdown())?;
            writeln!(
                out,
                "wrote {out_path} and {md_path}: {} cells ({} codecs x {} shapes), \
                 all conformant",
                report.cells.len(),
                report.codecs.len(),
                report.shapes.len()
            )?;
            if let Some(committed) = check.or_else(|| std::env::var("NEATS_BENCH_CHECK").ok()) {
                check_committed(&committed, &report).map_err(|msg| {
                    CliError(format!(
                        "schema drift: {msg} — regenerate with `neats bench all` and commit \
                         the updated artifacts"
                    ))
                })?;
                writeln!(out, "schema check: {committed} matches schema v{SCHEMA_VERSION}")?;
            }
            Ok(())
        }
    }
}

/// Loads a series input file: either one `timestamp,value` pair per line
/// (timestamps must be integers), or the plain one-value-per-line format
/// every other command reads — in which case point indices 0, 1, 2, … are
/// used as timestamps. Values are scaled by `10^digits` via the same
/// fixed-precision transform as `neats compress`.
fn load_series_file(path: &str, digits: u8) -> Result<(Vec<u64>, Vec<i64>), CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
    let timestamped = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .is_some_and(|l| l.contains(','));
    if !timestamped {
        // Plain format: exactly what `neats compress` reads — delegate so
        // the two commands can never diverge on scaling/rounding.
        let ts = timeseries::io::parse_lines(std::io::Cursor::new(text), digits)
            .map_err(|e| CliError(format!("{path}: {e}")))?;
        let stamps = (0..ts.len() as u64).collect();
        return Ok((stamps, ts.values().to_vec()));
    }
    let mut stamps: Vec<u64> = Vec::new();
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((t, v)) = line.split_once(',') else {
            return Err(CliError(format!(
                "{path}: mixes timestamped and plain lines (line {})",
                lineno + 1
            )));
        };
        let t: u64 = t
            .trim()
            .parse()
            .map_err(|_| CliError(format!("{path}:{}: bad timestamp {t:?}", lineno + 1)))?;
        // Reject out-of-order/duplicate timestamps at parse time with the
        // exact line, instead of letting the store's batch check point at a
        // batch-relative index later.
        if stamps.last().is_some_and(|&p| t <= p) {
            return Err(CliError(format!(
                "{path}:{}: timestamp {t} does not increase past the previous line",
                lineno + 1
            )));
        }
        let v = v.trim();
        let parsed: f64 = v
            .parse()
            .map_err(|_| CliError(format!("{path}:{}: bad value {v:?}", lineno + 1)))?;
        // `checked_scale` rejects NaN/inf (which f64's parser accepts) and
        // scaled-domain overflow — both would otherwise corrupt silently.
        let scaled = timeseries::checked_scale(parsed, digits).map_err(|kind| {
            CliError(format!(
                "{path}:{}: value {v:?} rejected: {}",
                lineno + 1,
                match kind {
                    timeseries::ValueErrorKind::NonFinite => "not finite",
                    timeseries::ValueErrorKind::OutOfRange =>
                        "does not fit the scaled 64-bit integer domain",
                }
            ))
        })?;
        stamps.push(t);
        values.push(scaled);
    }
    Ok((stamps, values))
}

fn parse_usize_msg(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{what} must be a non-negative integer, got {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_compress_with_flags() {
        let cmd = parse_args(&argv(
            "compress in.txt out.neats --digits 3 --kinds all --sneats --threads 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Compress {
                input: "in.txt".into(),
                output: "out.neats".into(),
                digits: 3,
                kinds: KindPool::All,
                sneats: true,
                threads: 2,
            }
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("compress in.txt out --bogus")).is_err());
        assert!(parse_args(&argv("lossy in.txt out")).is_err()); // missing --eps
        assert!(parse_args(&argv("compress in.txt out --threads")).is_err()); // missing value
        assert!(parse_args(&argv("")).is_err());
    }

    #[test]
    fn parse_get_and_range() {
        assert_eq!(
            parse_args(&argv("get f.neats 1 2 30")).unwrap(),
            Command::Get {
                input: "f.neats".into(),
                indices: vec![1, 2, 30]
            }
        );
        assert_eq!(
            parse_args(&argv("range f.neats 100 50")).unwrap(),
            Command::Range {
                input: "f.neats".into(),
                start: 100,
                count: 50
            }
        );
        assert!(parse_args(&argv("range f.neats abc 50")).is_err());
    }

    #[test]
    fn end_to_end_compress_query_decompress() {
        let dir = std::env::temp_dir().join("neats_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neats");
        let restored = dir.join("back.txt");
        let content: String = (0..500)
            .map(|k| format!("{:.2}\n", (k as f64 / 9.0).sin() * 100.0))
            .collect();
        std::fs::write(&input, &content).unwrap();

        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "compress {} {} --digits 2",
                input.display(),
                packed.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&log).contains("500 values"));

        // info
        let mut info = Vec::new();
        run(
            parse_args(&argv(&format!("info {}", packed.display()))).unwrap(),
            &mut info,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&info).contains("values:        500"));

        // get
        let mut got = Vec::new();
        run(
            parse_args(&argv(&format!("get {} 0 10", packed.display()))).unwrap(),
            &mut got,
        )
        .unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&got)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], 0); // sin(0)·100 scaled

        // sum estimate vs exact
        let mut sum_est = Vec::new();
        run(
            parse_args(&argv(&format!("sum {} 0 500", packed.display()))).unwrap(),
            &mut sum_est,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&sum_est).contains('±'));

        // decompress and compare to scaled input
        run(
            parse_args(&argv(&format!(
                "decompress {} {}",
                packed.display(),
                restored.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let back = std::fs::read_to_string(&restored).unwrap();
        let expected: Vec<i64> = content
            .lines()
            .map(|l| (l.parse::<f64>().unwrap() * 100.0).round() as i64)
            .collect();
        let got: Vec<i64> = back.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn parse_query_and_stat() {
        assert_eq!(
            parse_args(&argv("query f.neats 5 10..20")).unwrap(),
            Command::Query {
                input: "f.neats".into(),
                specs: vec!["5".into(), "10..20".into()]
            }
        );
        assert_eq!(
            parse_args(&argv("stat f.neatsl")).unwrap(),
            Command::Stat {
                input: "f.neatsl".into()
            }
        );
        assert!(parse_args(&argv("query f.neats")).is_err()); // no specs
        assert!(parse_args(&argv("stat")).is_err()); // no input
    }

    #[test]
    fn query_and_stat_serve_without_full_decode() {
        let dir = std::env::temp_dir().join("neats_cli_view_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neats");
        let content: String = (0..400).map(|k| format!("{}\n", k * k / 7)).collect();
        std::fs::write(&input, &content).unwrap();
        run(
            parse_args(&argv(&format!(
                "compress {} {}",
                input.display(),
                packed.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();

        // Point and range lookups via the zero-copy view.
        let mut got = Vec::new();
        run(
            parse_args(&argv(&format!("query {} 7 100..103", packed.display()))).unwrap(),
            &mut got,
        )
        .unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&got)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(
            lines,
            vec![7 * 7 / 7, 100 * 100 / 7, 101 * 101 / 7, 102 * 102 / 7]
        );

        // Out-of-bounds is an error, not a panic.
        let e = run(
            parse_args(&argv(&format!("query {} 400", packed.display()))).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");

        // stat reports the frame layout.
        let mut stat = Vec::new();
        run(
            parse_args(&argv(&format!("stat {}", packed.display()))).unwrap(),
            &mut stat,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&stat);
        assert!(text.contains("flavor:        lossless"), "{text}");
        assert!(text.contains("values:        400"), "{text}");
        assert!(text.contains("corrections"), "{text}");

        // Lossy archives are served by the same commands.
        let lossy = dir.join("out.neatsl");
        run(
            parse_args(&argv(&format!(
                "lossy {} {} --eps 3",
                input.display(),
                lossy.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut stat = Vec::new();
        run(
            parse_args(&argv(&format!("stat {}", lossy.display()))).unwrap(),
            &mut stat,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&stat);
        assert!(text.contains("flavor:        lossy"), "{text}");
        assert!(text.contains("eps:           3"), "{text}");
        let mut q = Vec::new();
        run(
            parse_args(&argv(&format!("query {} 10", lossy.display()))).unwrap(),
            &mut q,
        )
        .unwrap();
        let approx: i64 = String::from_utf8_lossy(&q).trim().parse().unwrap();
        assert!(
            (approx - 100 / 7).unsigned_abs() <= 4,
            "lossy answer {approx} off"
        );
    }

    #[test]
    fn lossy_pipeline_via_cli() {
        let dir = std::env::temp_dir().join("neats_cli_lossy");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let packed = dir.join("out.neatsl");
        let content: String = (0..300).map(|k| format!("{k}\n")).collect();
        std::fs::write(&input, &content).unwrap();
        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "lossy {} {} --eps 5",
                input.display(),
                packed.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&log);
        assert!(text.contains("max error"), "{text}");
    }

    #[test]
    fn parse_store_commands() {
        assert_eq!(
            parse_args(&argv(
                "store build out.pack a.txt b.csv --eps 4 --segment 512 --append"
            ))
            .unwrap(),
            Command::StoreBuild {
                output: "out.pack".into(),
                inputs: vec!["a.txt".into(), "b.csv".into()],
                digits: 0,
                eps: Some(4),
                segment: 512,
                threads: 0,
                append: true,
            }
        );
        assert_eq!(
            parse_args(&argv("store ls p.pack")).unwrap(),
            Command::StoreLs {
                pack: "p.pack".into()
            }
        );
        assert_eq!(
            parse_args(&argv("store query p.pack cpu 5 10..20 @99")).unwrap(),
            Command::StoreQuery {
                pack: "p.pack".into(),
                series: "cpu".into(),
                specs: vec!["5".into(), "10..20".into(), "@99".into()],
            }
        );
        assert!(parse_args(&argv("store")).is_err());
        assert!(parse_args(&argv("store frobnicate x")).is_err());
        assert!(parse_args(&argv("store build out.pack")).is_err()); // no inputs
        assert!(parse_args(&argv("store query p.pack cpu")).is_err()); // no specs
    }

    #[test]
    fn store_build_ls_query_end_to_end() {
        let dir = std::env::temp_dir().join("neats_cli_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("cpu.txt");
        let csv = dir.join("temp.csv");
        let pack = dir.join("metrics.pack");
        // One plain file (implicit 0.. stamps) and one timestamped CSV.
        let plain_text: String = (0..400).map(|k| format!("{}\n", k * k / 13)).collect();
        std::fs::write(&plain, &plain_text).unwrap();
        let csv_text: String = (0..300)
            .map(|k| format!("{},{}.5\n", 1000 + k * 60, 20 + k % 7))
            .collect();
        std::fs::write(&csv, &csv_text).unwrap();

        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "store build {} {} {} --digits 1 --segment 128",
                pack.display(),
                plain.display(),
                csv.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&log).contains("2 series, 700 points"));

        // ls shows both series and no dead bytes.
        let mut ls = Vec::new();
        run(
            parse_args(&argv(&format!("store ls {}", pack.display()))).unwrap(),
            &mut ls,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&ls);
        assert!(text.contains("cpu"), "{text}");
        assert!(text.contains("temp"), "{text}");
        assert!(text.contains("0 dead"), "{text}");

        // Point, range, and @time queries (values scaled by 10^1).
        let mut q = Vec::new();
        run(
            parse_args(&argv(&format!(
                "store query {} temp @1060 0..2",
                pack.display()
            )))
            .unwrap(),
            &mut q,
        )
        .unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&q)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(lines, vec![215, 205, 215]); // 21.5, then values at idx 0, 1
        let mut q = Vec::new();
        run(
            parse_args(&argv(&format!("store query {} cpu 200", pack.display()))).unwrap(),
            &mut q,
        )
        .unwrap();
        assert_eq!(
            String::from_utf8_lossy(&q).trim().parse::<i64>().unwrap(),
            200 * 200 / 13 * 10
        );

        // Errors are reported, not panicked.
        let e = run(
            parse_args(&argv(&format!("store query {} nope 0", pack.display()))).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.0.contains("unknown series"), "{e}");
        let e = run(
            parse_args(&argv(&format!("store query {} temp @1", pack.display()))).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.0.contains("no sample"), "{e}");

        // Append a third series, then verify it serves.
        run(
            parse_args(&argv(&format!(
                "store build {} {} --append --segment 128",
                pack.display(),
                dir.join("disk.txt").display()
            )))
            .map(|cmd| {
                std::fs::write(dir.join("disk.txt"), "1\n2\n3\n").unwrap();
                cmd
            })
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();
        let mut q = Vec::new();
        run(
            parse_args(&argv(&format!("store query {} disk 0..3", pack.display()))).unwrap(),
            &mut q,
        )
        .unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&q)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn parse_ingest_command() {
        assert_eq!(
            parse_args(&argv(
                "ingest data/ a.txt b.csv --digits 2 --fsync never --no-seal"
            ))
            .unwrap(),
            Command::Ingest {
                dir: "data/".into(),
                inputs: vec!["a.txt".into(), "b.csv".into()],
                digits: 2,
                fsync: FsyncPolicy::Never,
                no_seal: true,
            }
        );
        assert_eq!(
            parse_args(&argv("ingest data in.txt --fsync 16")).unwrap(),
            Command::Ingest {
                dir: "data".into(),
                inputs: vec!["in.txt".into()],
                digits: 0,
                fsync: FsyncPolicy::EveryN(16),
                no_seal: false,
            }
        );
        assert!(parse_args(&argv("ingest data")).is_err()); // no inputs
        assert!(parse_args(&argv("ingest data in.txt --fsync sometimes")).is_err());
    }

    #[test]
    fn ingest_command_end_to_end() {
        let dir = std::env::temp_dir().join("neats_cli_ingest_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("live");
        let cpu = dir.join("cpu.csv");
        let mem = dir.join("mem.txt");
        std::fs::write(&cpu, "1000,5\n1010,6\n1020,4\n").unwrap();
        std::fs::write(&mem, "7\n8\n9\n10\n").unwrap();

        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!(
                "ingest {} {} {}",
                data.display(),
                cpu.display(),
                mem.display()
            )))
            .unwrap(),
            &mut log,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&log).contains("2 series, 7 points"));

        // A second run appends (later stamps) without sealing: the points
        // stay in the WAL and still recover on the next open.
        std::fs::write(&cpu, "2000,11\n2010,12\n").unwrap();
        run(
            parse_args(&argv(&format!(
                "ingest {} {} --no-seal --fsync never",
                data.display(),
                cpu.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();

        let ing = Ingestor::open_default(&data).unwrap();
        assert_eq!(ing.len("cpu").unwrap(), 5);
        assert_eq!(ing.len("mem").unwrap(), 4);
        assert_eq!(ing.get("cpu", 4).unwrap(), 12);
        assert_eq!(ing.at_time("cpu", 1010).unwrap(), Some(6));
        drop(ing);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_serve_command() {
        assert_eq!(
            parse_args(&argv(
                "serve metrics.pack --addr 0.0.0.0:9000 --threads 4 --cache 64 \
                 --slow-query-us 500 --trace-ring 64"
            ))
            .unwrap(),
            Command::Serve {
                pack: "metrics.pack".into(),
                addr: "0.0.0.0:9000".into(),
                threads: 4,
                cache: 64,
                slow_query_us: Some(500),
                trace_ring: Some(64),
            }
        );
        // Defaults: loopback on the documented port, auto threads, cache 256,
        // observability knobs deferred to the env/server defaults.
        assert_eq!(
            parse_args(&argv("serve metrics.pack")).unwrap(),
            Command::Serve {
                pack: "metrics.pack".into(),
                addr: "127.0.0.1:8462".into(),
                threads: 0,
                cache: 256,
                slow_query_us: None,
                trace_ring: None,
            }
        );
        assert!(parse_args(&argv("serve")).is_err()); // no pack
        assert!(parse_args(&argv("serve p.pack --addr")).is_err()); // missing value
        assert!(parse_args(&argv("serve p.pack --cache lots")).is_err());
        assert!(parse_args(&argv("serve p.pack --slow-query-us soon")).is_err());
        assert!(parse_args(&argv("serve p.pack --trace-ring")).is_err()); // missing value
    }

    #[test]
    fn serve_command_serves_a_pack_end_to_end() {
        use std::io::{Read as _, Write as _};
        let dir = std::env::temp_dir().join("neats_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("cpu.txt");
        let pack = dir.join("serve.pack");
        let values: Vec<i64> = (0..400).map(|k: i64| k * k % 139 - 11).collect();
        let text: String = values.iter().map(|v| format!("{v}\n")).collect();
        std::fs::write(&input, text).unwrap();
        run(
            parse_args(&argv(&format!(
                "store build {} {} --segment 128",
                pack.display(),
                input.display()
            )))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();

        // Run `neats serve` on an ephemeral port in a background thread and
        // scrape the "listening on" line through a shared writer.
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = SharedBuf::default();
        let mut thread_log = log.clone();
        let cmd = parse_args(&argv(&format!(
            "serve {} --addr 127.0.0.1:0 --threads 2",
            pack.display()
        )))
        .unwrap();
        // The serving thread blocks until process exit; it is detached on
        // purpose (the harness reaps it with the test process). Keep the
        // handle so a pre-listen failure surfaces instead of hanging the
        // scrape loop below.
        let server_thread = std::thread::spawn(move || run(cmd, &mut thread_log));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            let text = String::from_utf8(log.0.lock().unwrap().clone()).unwrap();
            if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..].to_string();
            }
            if server_thread.is_finished() {
                panic!("serve exited before listening: {:?} (log: {text:?})", {
                    // The thread is finished; join cannot block.
                    server_thread.join()
                });
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve did not start listening within 10s (log: {text:?})"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        conn.write_all(b"GET /q/cpu?idx=123 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body.trim().parse::<i64>().unwrap(), values[123]);
        let logged = String::from_utf8(log.0.lock().unwrap().clone()).unwrap();
        assert!(logged.contains("serving 1 series (400 points)"), "{logged}");
    }

    #[test]
    fn parse_bench_all() {
        assert_eq!(
            parse_args(&argv(
                "bench all --n 2000 --queries 100 --seed 7 --codecs NeaTS,Gorilla \
                 --shapes constant --out a.json --md b.md --check c.json"
            ))
            .unwrap(),
            Command::BenchAll {
                n: Some(2000),
                queries: Some(100),
                seed: Some(7),
                codecs: Some("NeaTS,Gorilla".into()),
                shapes: Some("constant".into()),
                out: Some("a.json".into()),
                md: Some("b.md".into()),
                check: Some("c.json".into()),
            }
        );
        // Everything defaults to the NEATS_BENCH_* environment.
        assert_eq!(
            parse_args(&argv("bench all")).unwrap(),
            Command::BenchAll {
                n: None,
                queries: None,
                seed: None,
                codecs: None,
                shapes: None,
                out: None,
                md: None,
                check: None,
            }
        );
        assert!(parse_args(&argv("bench")).is_err());
        assert!(parse_args(&argv("bench ratios")).is_err());
        assert!(parse_args(&argv("bench all --n lots")).is_err());
        assert!(parse_args(&argv("bench all --codecs")).is_err()); // missing value
    }

    #[test]
    fn bench_all_end_to_end_with_schema_check() {
        let dir = std::env::temp_dir().join("neats_cli_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("BENCH_all.json");
        let md = dir.join("BENCHMARKS.md");
        let base = format!(
            "bench all --n 400 --queries 20 --codecs Gorilla,PLA --shapes constant,sawtooth \
             --out {} --md {}",
            json.display(),
            md.display()
        );
        let mut log = Vec::new();
        run(parse_args(&argv(&base)).unwrap(), &mut log).unwrap();
        let text = String::from_utf8_lossy(&log);
        assert!(text.contains("all conformant"), "{text}");
        assert!(std::fs::read_to_string(&json).unwrap().contains("\"schema\": 1"));
        assert!(std::fs::read_to_string(&md).unwrap().contains("| codec | mode |"));

        // Re-running with --check against the just-written artifact passes…
        let mut log = Vec::new();
        run(
            parse_args(&argv(&format!("{base} --check {}", json.display()))).unwrap(),
            &mut log,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&log).contains("schema check"), "wanted check line");

        // …and a sweep covering a codec the artifact lacks reports drift.
        let widened = format!(
            "bench all --n 400 --queries 20 --codecs Gorilla,PLA,Chimp --shapes constant \
             --out {} --md {} --check {}",
            dir.join("fresh.json").display(),
            dir.join("fresh.md").display(),
            json.display()
        );
        let e = run(parse_args(&argv(&widened)).unwrap(), &mut Vec::new()).unwrap_err();
        assert!(e.0.contains("schema drift"), "{e}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut sink = Vec::new();
        let e = run(
            Command::Info {
                input: "/nonexistent/definitely-missing.neats".into(),
            },
            &mut sink,
        )
        .unwrap_err();
        assert!(e.0.contains("i/o error") || e.0.contains("missing"), "{e}");
    }
}
