//! The `neats` command-line tool. See [`neats_cli`] for the implementation
//! and `neats --help` / [`neats_cli::USAGE`] for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", neats_cli::USAGE);
        return;
    }
    let cmd = match neats_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = neats_cli::run(cmd, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
