//! Offline stand-in for the parts of `proptest` 1.x this workspace uses.
//!
//! Supports the [`proptest!`] macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, the
//! [`Strategy`] trait with [`Strategy::prop_map`], [`any`], ranges and
//! tuples as strategies, `prop::collection::vec`, `prop::bool::weighted`,
//! and the [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Semantics vs the real crate: cases are generated from a deterministic
//! per-test seed, failures report the generated inputs and the failing
//! assertion, but **no shrinking** is performed. See `vendor/README.md`.

#![warn(missing_docs)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A failed test case (the `Err` side of a property body).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    inputs: Option<String>,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        Self { message: message.into(), inputs: None }
    }

    /// Attaches a rendering of the generated inputs (used by [`proptest!`]).
    pub fn with_inputs(mut self, inputs: &str) -> Self {
        self.inputs = Some(inputs.to_string());
        self
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(inputs) = &self.inputs {
            write!(f, "\ninputs: {inputs}")?;
        }
        Ok(())
    }
}

/// Runner configuration; only the case count is honoured by the shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a whole-domain default strategy (the shim's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The [`any`] strategy (generates from the type's [`Arbitrary`] impl).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Sources of a collection length.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The [`vec()`] strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod bool {
    //! Strategies for booleans.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The [`weighted`] strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random_bool(self.p)
        }
    }

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }
}

/// Drives one property: `cases` deterministic seeds derived from the test
/// name, panicking (with inputs and reproduction seed) on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name keeps seeds stable across runs and
    // independent of declaration order.
    let mut name_seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_seed ^= b as u64;
        name_seed = name_seed.wrapping_mul(0x1000_0000_01b3);
    }
    for i in 0..config.cases {
        let seed = name_seed.wrapping_add(i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{test_name}' failed at case {i} (seed {seed:#x}):\n{e}");
        }
    }
}

/// Everything a property-based test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property-based tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    let __inputs = ($($crate::Strategy::generate(&($strat), __rng),)+);
                    let __rendered = format!("{:?}", __inputs);
                    let ($($arg,)+) = __inputs;
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __outcome.map_err(|e| e.with_inputs(&__rendered))
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the surrounding property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the surrounding property if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Fails the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: {:?}",
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in -50i64..50, (a, b) in (0u64..10, 0.0f64..1.0)) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b), "b = {}", b);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0u8..4, 0..20).prop_map(|v| v.len())) {
            prop_assert!(v < 20);
        }

        #[test]
        fn weighted_bools(flags in prop::collection::vec(prop::bool::weighted(1.0), 1..10)) {
            for f in flags {
                prop_assert_eq!(f, true);
            }
        }

        #[test]
        fn early_ok_return(n in 0usize..10) {
            if n > 100 { return Ok(()); }
            prop_assert_ne!(n, 1000);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_case() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
