//! Offline stand-in for the parts of `rand` 0.9 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256\*\*), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension trait with `random`, `random_bool` and
//! `random_range` over integer and float ranges. Deterministic per seed; the
//! value stream differs from the real `rand` crate, which no caller here
//! relies on. See `vendor/README.md` for why this shim exists.

#![warn(missing_docs)]
use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's analogue of sampling from `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range. The blanket
/// [`SampleRange`] impls below are generic over `T` (mirroring the real
/// `rand`), which is what lets inference flow between the range literal and
/// the call site (`let v: u64 = rng.random_range(0..50)`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges a value of type `T` can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Rejection-sampled uniform draw from `[0, bound)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_below(rng, span + 1);
                    (lo as $wide).wrapping_add(off as $wide) as $t
                } else {
                    let off = uniform_below(rng, span);
                    (lo as $wide).wrapping_add(off as $wide) as $t
                }
            }
        }
    )*};
}

int_sample_uniform! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's natural domain;
    /// `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::draw(self) < p
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Deterministic per seed, passes casual statistical scrutiny, and is
    /// more than adequate for generating test workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-30..31);
            assert!((-30..31).contains(&v));
            let u: usize = rng.random_range(0..50);
            assert!(u < 50);
            let f: f64 = rng.random_range(0.1..3.0);
            assert!((0.1..3.0).contains(&f));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bools_roughly_weighted() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
