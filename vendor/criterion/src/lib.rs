//! Offline stand-in for the parts of `criterion` 0.5 this workspace uses.
//!
//! A minimal wall-clock benchmark harness: each `Bencher::iter` call is
//! timed over a few batches and the best per-iteration time is printed as
//! `group/id ... <time>`. No statistics, plots or HTML reports — just enough
//! to keep `cargo bench` (and `cargo test`, which type-checks benches)
//! working without registry access. See `vendor/README.md`.

#![warn(missing_docs)]
use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, shown per line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id` plus an optional parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Things accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the best mean-per-iteration over a few
    /// batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it runs ≥ ~2ms, capped.
        let mut n = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || n >= 1 << 20 {
                self.record(elapsed, n);
                break;
            }
            n *= 2;
        }
        // Measure: a few fixed batches at the calibrated size.
        for _ in 0..4 {
            let t = Instant::now();
            for _ in 0..n {
                hint::black_box(routine());
            }
            self.record(t.elapsed(), n);
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let per_iter = elapsed / iters.max(1) as u32;
        if per_iter < self.best {
            self.best = per_iter;
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { best: Duration::MAX };
        f(&mut b);
        self.report(&id.into_id(), &b);
        self
    }

    /// Runs `f` with a borrowed input as the benchmark `id`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let mut b = Bencher { best: Duration::MAX };
        f(&mut b, input);
        self.report(&id.into_id(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let mut line = format!("{}/{:<28} {:>12}", self.name, id, format_duration(b.best));
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let secs = b.best.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {:>10.1} MB/s", bytes as f64 / secs / 1e6));
            }
        }
        println!("{line}");
    }

    /// Ends the group (printing is per-benchmark in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string()).bench_function("", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` / `--bench` flags are accepted and
            // ignored by the shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        let mut ran = false;
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
