//! Offline stand-in for the [`polling`](https://crates.io/crates/polling)
//! crate: a portable readiness poller, here implemented over raw `epoll`
//! syscalls on Linux and answering [`std::io::ErrorKind::Unsupported`]
//! everywhere else (callers fall back to blocking I/O — see
//! `neats-serve`'s threaded serving mode).
//!
//! The subset mirrors the real crate's call-site API:
//!
//! * [`Poller::new`] / [`Poller::add`] / [`Poller::modify`] /
//!   [`Poller::delete`] / [`Poller::wait`] / [`Poller::notify`]
//! * [`Event`] interest/readiness flags and the [`Events`] buffer
//!
//! Like the real crate, registrations are **oneshot**: once an event for a
//! key is delivered, no further events arrive for it until the caller
//! re-arms interest with [`Poller::modify`]. Oneshot delivery is what a
//! readiness reactor wants anyway — it can never be stormed by a
//! level-triggered fd it hasn't serviced yet.
//!
//! This is the one vendor shim that cannot be implemented without `unsafe`:
//! it exists precisely to make raw `epoll_ctl`/`epoll_wait`/`eventfd`
//! syscalls (via the libc that `std` already links) available to an
//! otherwise std-only workspace. All unsafety is confined to this crate;
//! every `unsafe` block wraps a single FFI call on validated arguments.

#![warn(missing_docs)]

/// Interest in (or readiness of) a registered I/O source, tagged with the
/// caller's `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen identifier registered with [`Poller::add`].
    /// `usize::MAX` is reserved for [`Poller::notify`] wake-ups.
    pub key: usize,
    /// Interest in / readiness for reading (also set on hangup or error, so
    /// a closed peer is always surfaced to a read attempt).
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the source registered for a later re-arm).
    pub fn none(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A reusable buffer of readiness events filled by [`Poller::wait`].
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer with the default capacity.
    pub fn new() -> Self {
        Self {
            inner: Vec::with_capacity(1024),
        }
    }

    /// The events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer ([`Poller::wait`] also clears before filling).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

pub use sys::Poller;

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Events};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    // The kernel ABI expected by epoll_ctl/epoll_wait. On x86-64 the struct
    // is packed (a 12-byte layout the kernel chose long ago); other Linux
    // targets use natural alignment — the same cfg dance libc does.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    // The libc std already links; declaring these adds no dependency.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// The key [`Poller::wait`] never reports: it tags the internal
    /// [`Poller::notify`] eventfd.
    const NOTIFY_KEY: u64 = u64::MAX;

    /// An epoll instance plus an eventfd for cross-thread wake-ups.
    ///
    /// All methods take `&self`: the poller is `Sync` and any thread may
    /// add/modify/notify while another blocks in [`Poller::wait`] (epoll
    /// guarantees exactly this).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        event_fd: RawFd,
        /// Collapses redundant notifies between two waits: an eventfd write
        /// is only issued when the previous one has not yet been consumed.
        notified: AtomicBool,
    }

    // Raw fds owned exclusively by this struct; epoll is thread-safe.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// Creates an epoll instance with a registered wake-up eventfd.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain syscall, no pointers.
            let event_fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if event_fd < 0 {
                let e = io::Error::last_os_error();
                // SAFETY: epfd is the fd just created above.
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller {
                epfd,
                event_fd,
                notified: AtomicBool::new(false),
            };
            // Level-triggered (not oneshot): wait() drains the counter on
            // every delivery, so it can never storm.
            poller.ctl(EPOLL_CTL_ADD, event_fd, Some((EPOLLIN, NOTIFY_KEY)))?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, ev: Option<(u32, u64)>) -> io::Result<()> {
            let mut event = ev.map(|(events, data)| EpollEvent { events, data });
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: ptr is null (DEL) or points at a live stack EpollEvent;
            // the kernel copies it before returning.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn interest_bits(interest: Event) -> u32 {
            let mut bits = EPOLLONESHOT | EPOLLRDHUP;
            if interest.readable {
                bits |= EPOLLIN;
            }
            if interest.writable {
                bits |= EPOLLOUT;
            }
            bits
        }

        /// Registers `source` with oneshot `interest` under `interest.key`.
        /// The key `usize::MAX` is reserved for [`Poller::notify`].
        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == usize::MAX {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved",
                ));
            }
            self.ctl(
                EPOLL_CTL_ADD,
                source.as_raw_fd(),
                Some((Self::interest_bits(interest), interest.key as u64)),
            )
        }

        /// Re-arms (or changes) the oneshot interest of a registered source.
        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == usize::MAX {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved",
                ));
            }
            self.ctl(
                EPOLL_CTL_MOD,
                source.as_raw_fd(),
                Some((Self::interest_bits(interest), interest.key as u64)),
            )
        }

        /// Deregisters a source (call before closing its fd).
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
        }

        /// Blocks until at least one registered source is ready, `timeout`
        /// elapses (`None` = forever), or [`Poller::notify`] is called.
        /// Returns the number of events appended to `events` (0 on timeout
        /// or a bare notify). A pending notify is consumed by this call.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                // Round up so a 100µs timeout polls at 1ms, not busy-spins.
                Some(t) => {
                    t.as_millis().min(i32::MAX as u128) as i32
                        + if t.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
                None => -1,
            };
            let mut raw = [EpollEvent { events: 0, data: 0 }; 1024];
            // SAFETY: raw is a live, writable array; maxevents matches it.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal landing mid-wait is a spurious wake-up, not an
                // error the reactor should die on.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for ev in &raw[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (ev.events, ev.data);
                if data == NOTIFY_KEY {
                    self.notified.store(false, Ordering::SeqCst);
                    let mut counter = [0u8; 8];
                    // SAFETY: reading 8 bytes into a live buffer from the
                    // nonblocking eventfd this struct owns.
                    unsafe { read(self.event_fd, counter.as_mut_ptr(), 8) };
                    continue;
                }
                // Error/hangup surface as both readiness kinds so whichever
                // direction the caller is waiting on observes the failure.
                let err = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.inner.push(Event {
                    key: data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
            }
            Ok(events.inner.len())
        }

        /// Wakes the thread blocked in [`Poller::wait`] (or makes the next
        /// wait return immediately). Safe to call from any thread; redundant
        /// notifies between two waits collapse into one.
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::SeqCst) {
                return Ok(()); // a wake-up is already pending
            }
            let one = 1u64.to_ne_bytes();
            // SAFETY: writing 8 bytes from a live buffer to the eventfd this
            // struct owns; a full counter (EAGAIN) still wakes the waiter.
            unsafe { write(self.event_fd, one.as_ptr(), 8) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the two fds this struct owns exclusively.
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Events};
    use std::io;
    use std::time::Duration;

    /// Unsupported on this platform: [`Poller::new`] always fails with
    /// [`io::ErrorKind::Unsupported`], signalling callers to use their
    /// blocking-I/O fallback.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always `Err(Unsupported)` on non-Linux targets.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim requires epoll (Linux)",
            ))
        }

        /// Unreachable (no `Poller` value can exist on this platform).
        pub fn add(&self, _source: &impl AsRawFdStub, _interest: Event) -> io::Result<()> {
            unreachable!("Poller cannot be constructed on this platform")
        }

        /// Unreachable (no `Poller` value can exist on this platform).
        pub fn modify(&self, _source: &impl AsRawFdStub, _interest: Event) -> io::Result<()> {
            unreachable!("Poller cannot be constructed on this platform")
        }

        /// Unreachable (no `Poller` value can exist on this platform).
        pub fn delete(&self, _source: &impl AsRawFdStub) -> io::Result<()> {
            unreachable!("Poller cannot be constructed on this platform")
        }

        /// Unreachable (no `Poller` value can exist on this platform).
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            unreachable!("Poller cannot be constructed on this platform")
        }

        /// Unreachable (no `Poller` value can exist on this platform).
        pub fn notify(&self) -> io::Result<()> {
            unreachable!("Poller cannot be constructed on this platform")
        }
    }

    /// Stand-in bound for the `AsRawFd` sources the Linux implementation
    /// accepts (the trait lives under `std::os::fd`, absent on some
    /// non-unix targets).
    pub trait AsRawFdStub {}
    impl<T> AsRawFdStub for T {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::Unsupported => return,
            Err(e) => panic!("poller: {e}"),
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        // Nothing sent yet: a short wait times out empty.
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Once bytes arrive the key becomes readable...
        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(
            events.iter().next().map(|e| (e.key, e.readable)),
            Some((7, true))
        );

        // ...and oneshot delivery means no repeat until re-armed.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "oneshot interest must not re-fire");
        let mut server = server;
        let mut sink = [0u8; 8];
        assert_eq!(server.read(&mut sink).unwrap(), 4);
        poller.modify(&server, Event::all(7)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("write readiness after re-arm");
        assert!(ev.writable);

        poller.delete(&server).unwrap();
    }

    #[test]
    fn notify_wakes_wait_from_another_thread() {
        let poller = match Poller::new() {
            Ok(p) => std::sync::Arc::new(p),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => return,
            Err(e) => panic!("poller: {e}"),
        };
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let t0 = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "a bare notify delivers no events");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "notify must wake the wait"
        );
        t.join().unwrap();

        // A pending notify is consumed: the next wait times out normally.
        let t0 = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(5),
            "stale notify must not re-wake"
        );
    }
}
