#!/usr/bin/env bash
# Link-checks the repo's hand-written docs: every relative markdown link
# (`](path)` / `](path#anchor)`) must point at a file or directory that
# exists, resolved against the linking document's own directory. External
# (http/https/mailto) and pure-anchor (#…) links are skipped. Exits
# non-zero listing every broken link. Run from anywhere; CI runs it as the
# docs job's last step.
set -u
cd "$(dirname "$0")/.."

DOCS="README.md ARCHITECTURE.md docs/PROTOCOL.md CHANGES.md ROADMAP.md vendor/README.md"
status=0
checked=0

for doc in $DOCS; do
  if [ ! -f "$doc" ]; then
    echo "MISSING DOC: $doc"
    status=1
    continue
  fi
  dir=$(dirname "$doc")
  # Pull out `](target)` occurrences; strip the wrapper and any #anchor.
  # Pure-anchor links (`](#…)`) never match because the target must start
  # with a non-# character.
  targets=$(grep -oE '\]\([^)#][^)]*\)' "$doc" | sed -E 's/^\]\(([^)#]+)(#[^)]*)?\)$/\1/' | sort -u)
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ]; then
      echo "$doc: broken relative link -> $target"
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "ok: $checked relative link(s) across docs all resolve"
else
  echo "FAIL: broken links found"
fi
exit $status
