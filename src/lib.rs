//! # NeaTS — learned compression of nonlinear time series with random access
//!
//! This is a from-scratch Rust reproduction of the ICDE 2025 paper
//! *Learned Compression of Nonlinear Time Series With Random Access*
//! (Guerra, Vinciguerra, Boffa, Ferragina).
//!
//! The umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the NeaTS compressor itself: the generalised O'Rourke fitter
//!   (Theorem 1), the space-optimal partitioner (Algorithm 1), the compressed
//!   layout with O(1) random access (Algorithms 2–3), the lossy variant
//!   NeaTS-L, and the LeaTS / SNeaTS variants.
//! * [`store`] — the multi-series segmented packfile store: parallel batch
//!   ingestion, a checksummed catalog, concurrent zero-copy serving with a
//!   sharded segment-view cache, and `compact()` — the recommended way to
//!   serve many series from one file.
//! * [`ingest`] — the live write path: a crash-safe per-series write-ahead
//!   log, in-memory mutable heads fed by the SNeaTS streaming compressor,
//!   background sealing into pack segments, and generation-swapped reads so
//!   queries never block on writers.
//! * [`serve`] — the network frontend: a multi-threaded HTTP/1.1 query
//!   server over a [`store`] pack or a live [`ingest`] directory, with
//!   keep-alive, batched queries, a write endpoint, graceful shutdown, and
//!   `/stats` latency histograms (protocol spec in `docs/PROTOCOL.md`,
//!   system picture in `ARCHITECTURE.md`).
//! * [`succinct`] — bitvectors with rank/select, Elias-Fano sequences, packed
//!   integer vectors and a wavelet tree; the substrate the layout is built on.
//! * [`timeseries`] — the `TimeSeries` type, compressor traits, and the 16
//!   synthetic dataset generators mirroring the paper's evaluation corpus.
//! * [`lossy`] — the PLA and Adaptive Approximation lossy baselines.
//! * [`lossless`] — Gorilla, Chimp, Chimp128, TSXor, DAC, LeCo-style,
//!   ALP-style and two LZ77 codecs, plus the block-wise random-access wrapper.
//!
//! ## Quickstart
//!
//! ```
//! use neats::core::NeaTS;
//! use neats::timeseries::{CompressedSeries, TimeSeries};
//!
//! let values: Vec<i64> = (1..=1000).map(|x| {
//!     let x = x as f64;
//!     (40.0 * (x / 90.0).sin() + x.sqrt() * 3.0) as i64
//! }).collect();
//! let ts = TimeSeries::from_values(values.clone());
//!
//! let compressed = NeaTS::builder().build(&ts);
//! assert_eq!(compressed.len(), 1000);
//! // Lossless random access to any value without decompressing the rest:
//! assert_eq!(compressed.get(499), values[499]);
//! // Full decompression:
//! assert_eq!(compressed.decompress(), values);
//! ```

#![warn(missing_docs)]
pub use lossless_baselines as lossless;
pub use lossy_baselines as lossy;
pub use neats_core as core;
pub use neats_ingest as ingest;
pub use neats_serve as serve;
pub use neats_store as store;
pub use succinct;
pub use timeseries;
