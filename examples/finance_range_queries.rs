//! Real-time analytics over compressed stock prices: the range-query
//! workload of the paper's §IV-C4, on the application its intro motivates.
//!
//! A year of tick data is stored compressed; dashboards ask for windows of
//! different sizes (a candlestick, an hour, a trading day). Each query is
//! one random access plus a scan — no block decompression detours.
//!
//! Run with: `cargo run --release --example finance_range_queries`

use neats::core::NeaTS;
use neats::lossless::{Blockwise, FastLz};
use neats::timeseries::{CompressedSeries, Compressor, Dataset};
use std::time::Instant;

fn moving_average(values: &[i64]) -> f64 {
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

fn main() {
    let ts = Dataset::StocksUsa.generate(200_000);
    println!("tick series: {} prices (2 decimal digits)", ts.len());

    let neats = NeaTS::compress(&ts);
    let lz = Blockwise::new(FastLz).compress(&ts);
    println!(
        "NeaTS: {:.2}% of raw | FastLZ blocks: {:.2}% of raw",
        100.0 * neats.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64,
        100.0 * lz.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64,
    );

    // Moving-average dashboards over windows of growing size.
    let queries: Vec<(usize, usize)> = (0..2000)
        .map(|q| {
            let len = 10usize << (q % 8); // 10 .. 1280 ticks
            let start = (q * 9973) % (ts.len() - len);
            (start, len)
        })
        .collect();

    for (name, series) in [("NeaTS", &neats as &dyn CompressedSeries), ("FastLZ", &lz)] {
        let mut out = Vec::new();
        let mut acc = 0.0f64;
        let t0 = Instant::now();
        for &(start, len) in &queries {
            out.clear();
            series.scan_range(start, len, &mut out);
            acc += moving_average(&out);
        }
        let dt = t0.elapsed();
        println!(
            "{name:8} {:6.0} range queries/s (checksum {acc:.1})",
            queries.len() as f64 / dt.as_secs_f64()
        );
    }

    // Verify query results are identical across engines.
    let mut a = Vec::new();
    let mut b = Vec::new();
    neats.scan_range(123_456, 512, &mut a);
    lz.scan_range(123_456, 512, &mut b);
    assert_eq!(a, b);
    assert_eq!(a, &ts.values()[123_456..123_968]);
    println!("query results verified identical across engines ✓");
}
