//! Quickstart: compress a time series losslessly, access it randomly, and
//! inspect the learned functions (the paper's Fig. 1 in miniature).
//!
//! Run with: `cargo run --release --example quickstart`

use neats::core::{Kind, NeaTS};
use neats::timeseries::{CompressedSeries, TimeSeries};

fn main() {
    // A synthetic signal mixing the trends NeaTS is built for: a linear
    // ramp, an exponential burst, and a square-root tail, plus small noise.
    let mut values: Vec<i64> = Vec::new();
    values.extend((0..400i64).map(|k| 50 + 3 * k + (k % 5 - 2)));
    values.extend((0..300i64).map(|k| (1250.0 * (0.004 * k as f64).exp()) as i64));
    values.extend((0..500i64).map(|k| 4100 + (900.0 * ((k + 1) as f64).sqrt()) as i64));
    let ts = TimeSeries::from_values(values);

    // Lossless compression with the paper's default configuration.
    let compressed = NeaTS::compress(&ts);

    println!("original size:    {} bytes", ts.uncompressed_bytes());
    println!("compressed size:  {} bytes", compressed.size_in_bytes());
    println!(
        "compression ratio: {:.2}%",
        100.0 * compressed.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64
    );
    println!("fragments:        {}", compressed.fragment_count());

    // Random access: any value, without touching the rest (Algorithm 3).
    assert_eq!(compressed.get(777), ts.values()[777]);
    println!("\nvalue at index 777 = {} (random access)", compressed.get(777));

    // Full decompression is exact (Algorithm 2).
    assert_eq!(compressed.decompress(), ts.values());
    println!("full decompression verified lossless ✓");

    // Inspect the learned piecewise model — which function covers what.
    println!("\nlearned fragments (first 10):");
    println!("{:>8} {:>8}  {:<12}", "start", "end", "kind");
    for i in 0..compressed.fragment_count().min(10) {
        let f = compressed.fragment(i);
        println!("{:>8} {:>8}  {:<12}", f.start, f.end, f.kind.name());
    }
    let hist = compressed.kind_histogram();
    println!("\nfunction-kind histogram: {:?}",
        hist.iter().map(|(k, c)| (k.name(), *c)).collect::<Vec<_>>());

    // The nonlinear pool should have picked non-linear kinds here.
    assert!(hist.iter().any(|(k, c)| *c > 0 && *k != Kind::Linear), "expected nonlinear fits");
}
