//! A miniature time-series storage engine on top of NeaTS: streaming
//! ingestion, on-disk persistence, timestamp indexing, and aggregate
//! queries over compressed data — the composition a time-series database
//! (the paper's §I motivation) would actually deploy.
//!
//! Run with: `cargo run --release --example storage_engine`

use neats::core::{ArchiveView, NeaTS, NeaTSWriter, TimestampedNeaTS};
use neats::timeseries::{CompressedSeries, Dataset};

fn main() {
    let dir = std::env::temp_dir().join("neats_storage_engine");
    std::fs::create_dir_all(&dir).expect("create storage dir");

    // --- Ingestion: values arrive as a stream, memory stays bounded. ---
    let feed = Dataset::AirPressure.generate(300_000);
    let mut writer = NeaTSWriter::new(NeaTS::builder(), 65_536);
    writer.extend(feed.values().iter().copied());
    let store = writer.finish();
    println!(
        "ingested {} readings into {} chunks, {:.2}% of raw",
        store.len(),
        store.chunk_count(),
        100.0 * store.size_in_bytes() as f64 / feed.uncompressed_bytes() as f64
    );

    // --- Persistence: each chunk is a self-contained file. ---
    for i in 0..store.chunk_count() {
        let path = dir.join(format!("chunk-{i:04}.neats"));
        std::fs::write(&path, store.chunk(i).to_bytes()).expect("write chunk");
    }
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("list storage dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".neats"))
        .map(|e| e.metadata().expect("metadata").len())
        .sum();
    println!("persisted {} bytes across {} chunk files", on_disk, store.chunk_count());

    // --- Serving: open one chunk zero-copy and answer queries from the
    // file bytes directly. `ArchiveView::open` validates the checksummed
    // frame once and allocates nothing proportional to the chunk, which is
    // what a server opening thousands of chunks per second needs.
    let chunk_bytes = std::fs::read(dir.join("chunk-0002.neats")).expect("read chunk");
    let t0 = std::time::Instant::now();
    let chunk2 = ArchiveView::open(&chunk_bytes).expect("valid chunk file");
    let open_us = t0.elapsed().as_secs_f64() * 1e6;
    let global_index = 2 * 65_536 + 1234;
    assert_eq!(chunk2.at(1234), feed.values()[global_index]);
    let mut window = Vec::new();
    chunk2.range(1000..1064, &mut window);
    assert_eq!(window, &feed.values()[2 * 65_536 + 1000..2 * 65_536 + 1064]);
    println!(
        "opened chunk 2 zero-copy in {open_us:.0} µs and served point + range queries ✓"
    );

    // --- Aggregates: dashboard means from the learned functions only. ---
    let serving = chunk2.as_lossless().expect("lossless chunk");
    let est = serving.mean_range_estimate(0, chunk2.len());
    let exact =
        serving.sum_range_exact(0, chunk2.len()) as f64 / chunk2.len() as f64;
    println!(
        "chunk 2 mean: estimate {:.2} ± {:.2} (exact {:.2}) from {} fragments",
        est.value,
        est.max_error,
        exact,
        chunk2.fragment_count()
    );
    assert!((est.value - exact).abs() <= est.max_error);

    // --- Timestamp index: a second table with irregular timestamps. ---
    let n = 50_000usize;
    let stamps: Vec<u64> = (0..n as u64).map(|i| 1_710_000_000 + i * 60 + (i % 13)).collect();
    let temps = Dataset::IrBioTemp.generate(n);
    let table = TimestampedNeaTS::compress(&stamps, &temps, &NeaTS::builder())
        .expect("valid timestamps");
    let day_start = stamps[n / 2];
    let mut day = Vec::new();
    table.range_by_time(day_start, day_start + 86_400, &mut day);
    println!(
        "time-indexed table: {} readings in the queried day, index+values at {:.2}% of raw",
        day.len(),
        100.0 * table.size_in_bytes() as f64 / temps.uncompressed_bytes() as f64
    );
    assert!(!day.is_empty());

    println!("\nstorage engine demo complete ✓");
}
