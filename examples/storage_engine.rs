//! A miniature time-series storage engine on top of the pack store:
//! multi-series ingestion with parallel segment compression, one-file
//! persistence, concurrent zero-copy serving with a segment-view cache,
//! time-indexed and aggregate queries over compressed data, and space
//! reclamation — the composition a time-series database (the paper's §I
//! motivation) would actually deploy.
//!
//! Run with: `cargo run --release --example storage_engine`

use neats::store::{Store, StoreConfig, StoreMode, StoreOptions, StoreWriter};
use neats::timeseries::Dataset;

fn main() {
    let dir = std::env::temp_dir().join("neats_storage_engine");
    std::fs::create_dir_all(&dir).expect("create storage dir");
    let pack_path = dir.join("metrics.pack");

    // --- Ingestion: several feeds land in one pack; segments are
    // compressed in parallel at finish().
    let n = 100_000usize;
    let feeds = [
        ("air-pressure", Dataset::AirPressure),
        ("bio-temp", Dataset::IrBioTemp),
        ("wind-dir", Dataset::WindDirection),
    ];
    let mut writer = StoreWriter::new(StoreConfig {
        segment_points: 16_384,
        ..StoreConfig::default()
    });
    let mut raw_bytes = 0usize;
    for (name, ds) in &feeds {
        let values = ds.generate(n);
        // Irregular arrival times: one reading every ~30 s with jitter.
        let stamps: Vec<u64> =
            (0..n as u64).map(|i| 1_710_000_000 + i * 30 + (i * i) % 7).collect();
        raw_bytes += values.uncompressed_bytes();
        writer.ingest(name, &stamps, values.values()).expect("valid batch");
    }
    let pack = writer.finish().expect("seal pack");
    std::fs::write(&pack_path, &pack).expect("persist pack");
    println!(
        "ingested {} series × {n} readings into one {}-byte pack ({:.2}% of raw)",
        feeds.len(),
        pack.len(),
        100.0 * pack.len() as f64 / raw_bytes as f64
    );

    // --- Serving: open the pack once; only the catalog is validated up
    // front. Every query is answered through borrowed zero-copy views of
    // the mapped bytes, with hot segments kept in a sharded LRU cache.
    let t0 = std::time::Instant::now();
    let store = Store::open_path(&pack_path).expect("open pack");
    let open_us = t0.elapsed().as_secs_f64() * 1e6;
    let oracle = Dataset::AirPressure.generate(n);
    assert_eq!(store.get("air-pressure", 54_321).unwrap(), oracle.values()[54_321]);
    let mut window = Vec::new();
    store.range("air-pressure", 60_000..60_064, &mut window).unwrap();
    assert_eq!(window, &oracle.values()[60_000..60_064]);
    println!("opened the pack in {open_us:.0} µs and served point + range queries ✓");

    // --- Concurrent dashboards: scoped reader threads share the store.
    std::thread::scope(|scope| {
        for (name, _) in &feeds {
            let store = &store;
            scope.spawn(move || {
                let len = store.series(name).expect("known series").len();
                let sum = store.sum(name, 0..len).expect("aggregate");
                let (lo, hi) = store.min_max(name, 0..len).expect("aggregate").unwrap();
                let est = store.sum_estimate(name, 0..len).expect("estimate");
                assert!((est.value - sum as f64).abs() <= est.max_error);
                println!(
                    "  {name:<14} mean {:>12.2}  min {lo:>8}  max {hi:>8}  (model estimate ± {:.0})",
                    sum as f64 / len as f64,
                    est.max_error
                );
            });
        }
    });
    let stats = store.cache_stats();
    println!(
        "cache after the dashboard pass: {} hits / {} misses ({} views cached)",
        stats.hits, stats.misses, stats.entries
    );

    // --- Time travel: the pack carries an Elias-Fano timestamp index per
    // segment, so interval queries stitch across segments.
    let day_start = store.timestamp("bio-temp", n / 2).unwrap();
    let mut day = Vec::new();
    store.range_by_time("bio-temp", day_start, day_start + 86_400, &mut day).unwrap();
    assert!(!day.is_empty());
    let exact = store.at_time("bio-temp", day[0].0).unwrap();
    assert_eq!(exact, Some(day[0].1));
    println!("time-indexed: {} readings in the queried day starting at {day_start}", day.len());

    // --- Retention: drop a series, then compact to reclaim its bytes.
    let mut writer = StoreWriter::append_to(
        &pack,
        StoreConfig { mode: StoreMode::Lossless, ..StoreConfig::default() },
    )
    .expect("reopen for append");
    writer.delete_series("wind-dir").expect("wind-dir is in the catalog");
    let trimmed = writer.finish().expect("seal");
    let trimmed_store =
        Store::open_with(trimmed, StoreOptions::default()).expect("open trimmed");
    let reclaimed = trimmed_store.dead_bytes();
    let compacted = trimmed_store.compact();
    println!(
        "retention: dropped 1 series, compacted {} dead bytes away ({} -> {} bytes)",
        reclaimed,
        trimmed_store.as_bytes().len(),
        compacted.len()
    );
    let small = Store::open(compacted).expect("open compacted");
    assert_eq!(small.dead_bytes(), 0);
    assert_eq!(small.series_count(), 2);
    assert_eq!(small.get("air-pressure", 54_321).unwrap(), oracle.values()[54_321]);

    println!("\nstorage engine demo complete ✓");
}
