//! Sensor monitoring on a constrained device: lossy NeaTS-L with an error
//! guarantee, compared against keeping the data lossless.
//!
//! The paper's intro motivates exactly this scenario: IoT/edge deployments
//! that "sacrifice precious historical data to make room for new data".
//! With NeaTS-L an operator keeps months of sensor history at a guaranteed
//! maximum error instead of deleting it.
//!
//! Run with: `cargo run --release --example sensor_monitoring`

use neats::core::{NeaTS, NeaTSLossy};
use neats::timeseries::{CompressedSeries, Dataset};

fn main() {
    // A day-scale infrared biological temperature feed (2 decimal digits).
    let ts = Dataset::IrBioTemp.generate(100_000);
    let range = ts.delta();
    println!("sensor feed: {} readings, value range Δ = {range}", ts.len());

    // Lossless baseline for reference.
    let lossless = NeaTS::compress(&ts);
    println!(
        "\nlossless NeaTS:  {:8} bytes ({:.2}%)",
        lossless.size_in_bytes(),
        100.0 * lossless.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64
    );

    // Lossy tiers: tighten or loosen the guarantee, watch the space move.
    println!("\nlossy NeaTS-L tiers (ε as % of range):");
    println!("{:>12} {:>12} {:>10} {:>12} {:>10}", "ε", "ε (% range)", "bytes", "ratio (%)", "MAPE (%)");
    for pct in [0.01f64, 0.1, 1.0] {
        let eps = ((range as f64) * pct / 100.0).round().max(1.0) as u64;
        let lossy = NeaTS::builder().build_lossy(&ts, eps);
        let measured = lossy.max_error(&ts);
        assert!(measured <= eps + 1, "guarantee violated: {measured} > {eps}");
        println!(
            "{:>12} {:>12.3} {:>10} {:>12.3} {:>10.3}",
            eps,
            pct,
            lossy.size_in_bytes(),
            100.0 * lossy.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64,
            lossy.mape(&ts),
        );
    }

    // Alerting demo: reconstruct a suspicious window from the 0.1% tier and
    // check a threshold, using random access only (no full decompression).
    let eps = ((range as f64) * 0.001).round().max(1.0) as u64;
    let lossy = NeaTSLossy::compress(&ts, &neats::core::Kind::NEATS_DEFAULT, eps);
    let window = 41_000..41_100;
    let peak = window.clone().map(|k| lossy.approximate(k)).max().expect("non-empty window");
    let true_peak = ts.values()[window].iter().copied().max().expect("non-empty window");
    println!("\nwindow peak: approx {peak} vs true {true_peak} (|err| ≤ {eps} guaranteed)");
    assert!(peak.abs_diff(true_peak) <= eps + 1);
}
