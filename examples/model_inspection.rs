//! Inspecting what NeaTS learns: function kinds, ε choices, and the effect
//! of the function pool on different signal shapes.
//!
//! This example exercises the research-facing API surface: building with
//! custom kind pools and ε sets, reading fragment descriptors, and comparing
//! the full DP against the LeaTS/SNeaTS variants.
//!
//! Run with: `cargo run --release --example model_inspection`

use neats::core::{Kind, NeaTS};
use neats::timeseries::{CompressedSeries, Dataset, TimeSeries};

fn summarize(name: &str, ts: &TimeSeries) {
    let c = NeaTS::compress(ts);
    let ratio = 100.0 * c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64;
    let hist: Vec<(&str, usize)> =
        c.kind_histogram().into_iter().map(|(k, n)| (k.name(), n)).collect();
    println!("{name:<16} ratio {ratio:6.2}%  fragments {:5}  kinds {hist:?}", c.fragment_count());
}

fn main() {
    println!("== which functions fit which signals ==");
    summarize("ECG", &Dataset::Ecg.generate(50_000));
    summarize("air pressure", &Dataset::AirPressure.generate(50_000));
    summarize("bitcoin", &Dataset::BitcoinPrice.generate(50_000));
    summarize("GPS latitude", &Dataset::GeolifeLat.generate(50_000));

    // A pure parabola: the anchored quadratic family should dominate.
    let parabola = TimeSeries::from_values((0..20_000i64).map(|k| k * k / 100).collect());
    summarize("parabola", &parabola);

    println!("\n== variant comparison on one dataset (NeaTS / LeaTS / SNeaTS) ==");
    let ts = Dataset::DewpointTemp.generate(50_000);
    for (name, builder) in
        [("NeaTS", NeaTS::builder()), ("LeaTS", NeaTS::leats()), ("SNeaTS", NeaTS::sneats())]
    {
        let t0 = std::time::Instant::now();
        let c = builder.build(&ts);
        let dt = t0.elapsed();
        assert_eq!(c.decompress(), ts.values());
        println!(
            "{name:<8} ratio {:6.2}%  compress {:7.1} ms  fragments {}",
            100.0 * c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64,
            dt.as_secs_f64() * 1e3,
            c.fragment_count()
        );
    }

    println!("\n== widening the function pool ==");
    let ts = Dataset::BirdMigration.generate(18_000);
    for (label, kinds) in [
        ("linear only", vec![Kind::Linear]),
        ("paper default", Kind::NEATS_DEFAULT.to_vec()),
        ("all 11 kinds", Kind::ALL.to_vec()),
    ] {
        let c = NeaTS::builder().kinds(&kinds).build(&ts);
        assert_eq!(c.decompress(), ts.values());
        println!(
            "{label:<14} ratio {:6.2}%  fragments {}",
            100.0 * c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64,
            c.fragment_count()
        );
    }
}
